//! Durable training checkpoints (DESIGN.md §14).
//!
//! A [`SessionCheckpoint`] captures everything a
//! [`ServerSession`](crate::ServerSession) mutates between training
//! steps — the schedule cursor, the loss trajectory, per-client
//! delivery credit, the active re-shard, and the model snapshot
//! (including the lazily-derived unit keys, so a resumed server's
//! key-request stream matches recordings). Together with the input
//! suffix past `transcript_offset` (transcript entries or ledger
//! lines), it reconstructs the exact live server: server state is a
//! pure function of the message stream, so `checkpoint + suffix ≡
//! full stream`.
//!
//! ## File format
//!
//! The on-disk [`CheckpointStore`] mirrors the discipline of the group
//! table cache (`crates/group/src/cache.rs`):
//!
//! ```text
//! magic    8 B   "CNNCKP01" (bumped on any layout change)
//! fprint   8 B   FNV-1a-64 over the canonical JSON of the
//!                SessionConfig, little-endian
//! payload  …     the SessionCheckpoint as JSON, or as the binary
//!                wire encoding (sniffed by its leading byte — a
//!                binary payload opens with `0xB1`, JSON with `{`)
//! check    8 B   4-lane word-folded FNV-1a-64 over everything above,
//!                little-endian
//! ```
//!
//! The frame is format-agnostic: [`CheckpointStore::with_format`]
//! picks what `save` writes, and `load` sniffs, so a daemon restarted
//! under the other wire format resumes old checkpoints unchanged
//! (DESIGN.md §16). The config fingerprint stays FNV-1a over the
//! *canonical JSON* of the config in both cases, so a format switch
//! never orphans a file.
//!
//! The config fingerprint appears verbatim in the header so a file
//! copied between sessions with different configs is rejected rather
//! than silently resuming the wrong run. Writes go through a temp
//! file and an atomic rename, so a crash mid-write can never leave a
//! truncated file that parses; any mismatch — length, checksum, magic,
//! fingerprint, schema — is a **typed** [`CheckpointError`], not a
//! panic or a silent miss, because resuming from a bad checkpoint must
//! fail loud.

use core::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use cryptonn_core::MlpSnapshot;
use cryptonn_wire::WireFormat;
use serde::{Deserialize, Serialize};

use crate::messages::{ClientId, ReshardSpec, SessionConfig, SessionId};

/// The checkpoint payload schema this build writes and reads. Bumped
/// whenever [`SessionCheckpoint`] changes shape.
pub const CHECKPOINT_SCHEMA: u32 = 1;

const MAGIC: [u8; 8] = *b"CNNCKP01";
const HEADER_LEN: usize = MAGIC.len() + 8;

/// One client's per-client counter inside a checkpoint (the vendored
/// serde has no tuple support, so `(client, count)` pairs get a named
/// shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientCursor {
    /// The client.
    pub client: ClientId,
    /// The counter: batches per epoch in `registered`, own batches
    /// consumed in `delivered`.
    pub count: u64,
}

/// Everything a [`ServerSession`](crate::ServerSession) needs to pick a
/// run back up mid-schedule. See the module docs for the resume
/// equation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Payload schema version ([`CHECKPOINT_SCHEMA`] when written by
    /// this build).
    pub schema: u32,
    /// How many entries of the session's input stream (transcript
    /// envelopes or ledger lines) this state already reflects; a
    /// resume replays only the suffix.
    pub transcript_offset: u64,
    /// The schedule cursor: the next global step to train.
    pub next_step: u64,
    /// Per-step secure losses so far.
    pub losses: Vec<f64>,
    /// Batches per epoch for every registered client.
    pub registered: Vec<ClientCursor>,
    /// Own batches consumed per client — the credit state a rejoining
    /// client's send cursor rewinds to.
    pub delivered: Vec<ClientCursor>,
    /// The fixed schedule width, once every client registered.
    pub batches_per_epoch: Option<u64>,
    /// Total steps of the (possibly re-cut) run.
    pub total_steps: Option<u64>,
    /// Schedule generation at the cut.
    pub gen: u32,
    /// The active re-shard, if the schedule was re-cut.
    pub reshard: Option<ReshardSpec>,
    /// The model's between-step state (weights + cached unit keys).
    pub model: MlpSnapshot,
}

/// Every way loading or applying a checkpoint can fail, typed so the
/// corruption proptests need no string matching.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// No checkpoint exists for the session.
    Missing,
    /// The file is truncated, fails its checksum, or carries the wrong
    /// magic — anything that breaks the frame before the payload can
    /// be trusted.
    Corrupt(String),
    /// The header fingerprint does not match the session config the
    /// caller expects — a file from a different run.
    FingerprintMismatch,
    /// The payload speaks a schema this build does not.
    StaleSchema {
        /// The schema the file carries.
        found: u32,
        /// The schema this build speaks.
        expected: u32,
    },
    /// The session's model family has no snapshot support.
    UnsupportedModel(&'static str),
    /// Filesystem I/O failed (distinct from a malformed file).
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "no checkpoint on disk"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint file corrupt: {why}"),
            CheckpointError::FingerprintMismatch => {
                write!(f, "checkpoint belongs to a different session config")
            }
            CheckpointError::StaleSchema { found, expected } => {
                write!(f, "checkpoint schema {found}, this build speaks {expected}")
            }
            CheckpointError::UnsupportedModel(family) => {
                write!(f, "the {family} model family has no checkpoint support")
            }
            CheckpointError::Io(why) => write!(f, "checkpoint I/O failed: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Four-lane FNV-1a-64 over 8-byte little-endian words — the same
/// digest the group table cache uses (content-, order- and
/// length-sensitive; the zero-padded tail block cannot alias a longer
/// file).
fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [SEED, SEED ^ 1, SEED ^ 2, SEED ^ 3];
    let mut blocks = bytes.chunks_exact(32);
    for block in blocks.by_ref() {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("exact chunk"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 32];
        padded[..tail.len()].copy_from_slice(tail);
        for (lane, word) in lanes.iter_mut().zip(padded.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().expect("exact chunk"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = SEED;
    for lane in lanes.into_iter().chain([bytes.len() as u64]) {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The 8-byte header fingerprint of a session config: FNV-1a-64 over
/// its canonical JSON.
pub fn config_fingerprint(config: &SessionConfig) -> u64 {
    let json = serde_json::to_string(config).expect("SessionConfig serializes");
    fnv1a(json.as_bytes())
}

/// A directory of per-session checkpoint files, latest-wins (one file
/// per session, atomically replaced on every save).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    format: WireFormat,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first save), writing seed
    /// JSON payloads.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            format: WireFormat::Json,
        }
    }

    /// The same store, writing payloads in `format`. Loading is
    /// unaffected — it sniffs either format.
    #[must_use]
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file one session's checkpoint lives in.
    pub fn path(&self, session: SessionId) -> PathBuf {
        self.dir.join(format!("{session}.ckpt"))
    }

    /// Frames and atomically writes one session's checkpoint,
    /// replacing any previous one.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(
        &self,
        session: SessionId,
        config: &SessionConfig,
        ckpt: &SessionCheckpoint,
    ) -> Result<(), CheckpointError> {
        let mut buf = Vec::with_capacity(HEADER_LEN + 8);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&config_fingerprint(config).to_le_bytes());
        cryptonn_wire::append_payload(ckpt, self.format, &mut buf)
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        let check = fnv1a(&buf);
        buf.extend_from_slice(&check.to_le_bytes());

        let path = self.path(session);
        fs::create_dir_all(&self.dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &buf).map_err(|e| CheckpointError::Io(e.to_string()))?;
        fs::rename(&tmp, &path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads and fully verifies one session's checkpoint: frame length,
    /// checksum, magic, config fingerprint, payload schema — any
    /// mismatch is a typed rejection, never a silently-wrong resume.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Missing`] when no file exists; the other
    /// variants per their docs.
    pub fn load(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<SessionCheckpoint, CheckpointError> {
        let path = self.path(session);
        let buf = match fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CheckpointError::Missing)
            }
            Err(e) => return Err(CheckpointError::Io(e.to_string())),
        };
        if buf.len() < HEADER_LEN + 8 {
            return Err(CheckpointError::Corrupt(format!(
                "{} bytes is shorter than the frame header",
                buf.len()
            )));
        }
        let (body, check) = buf.split_at(buf.len() - 8);
        let check = u64::from_le_bytes(check.try_into().expect("8-byte suffix"));
        if fnv1a(body) != check {
            return Err(CheckpointError::Corrupt("checksum mismatch".into()));
        }
        if body[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let fp = u64::from_le_bytes(body[MAGIC.len()..HEADER_LEN].try_into().expect("8 bytes"));
        if fp != config_fingerprint(config) {
            return Err(CheckpointError::FingerprintMismatch);
        }
        let ckpt: SessionCheckpoint = cryptonn_wire::decode_payload(&body[HEADER_LEN..])
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        if ckpt.schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::StaleSchema {
                found: ckpt.schema,
                expected: CHECKPOINT_SCHEMA,
            });
        }
        Ok(ckpt)
    }

    /// Deletes one session's checkpoint, if present (completed sessions
    /// need no durability).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure other than the
    /// file already being gone.
    pub fn remove(&self, session: SessionId) -> Result<(), CheckpointError> {
        match fs::remove_file(self.path(session)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CheckpointError::Io(e.to_string())),
        }
    }
}
