//! Direct equivalence tests for each secure step of Algorithm 2:
//! every secure computation must equal its plaintext reference on the
//! quantized values, and every misuse must yield a typed error.

use cryptonn_core::secure_steps::{
    derive_unit_keys, secure_cross_entropy_loss, secure_dense_forward, secure_dense_weight_grad,
    secure_output_delta,
};
use cryptonn_core::{Client, CryptoNnConfig, DlogTableCache};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::Matrix;
use cryptonn_nn::Dense;
use cryptonn_smc::{FixedPoint, Parallelism};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    authority: KeyAuthority,
    cache: DlogTableCache,
    config: CryptoNnConfig,
}

fn fixture(seed: u64) -> Fixture {
    let config = CryptoNnConfig::fast();
    let group = SchnorrGroup::precomputed(config.level);
    Fixture {
        authority: KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed),
        cache: DlogTableCache::new(group),
        config,
    }
}

#[test]
fn secure_forward_equals_quantized_plaintext_forward() {
    let mut fx = fixture(81);
    let fp = fx.config.fp;
    let (n, k, m) = (5, 3, 4);

    let mut rng = StdRng::seed_from_u64(82);
    let layer = Dense::new(n, k, &mut rng);
    let x = Matrix::from_fn(m, n, |r, c| ((r * n + c) % 10) as f64 / 10.0);
    let y = Matrix::zeros(m, 1);

    let mut client = Client::for_mlp(&fx.authority, n, 1, fp, 83);
    let batch = client.encrypt_batch(&x, &y).unwrap();

    let z = secure_dense_forward(
        &fx.authority,
        &mut fx.cache,
        &batch,
        &layer,
        fp,
        Parallelism::Serial,
    )
    .unwrap();

    // Reference: quantize x and W the same way, multiply in plaintext.
    let xq = fp.roundtrip_matrix(&x);
    let wq = fp.roundtrip_matrix(layer.weights());
    let expect = xq.matmul(&wq).add_row_broadcast(layer.bias());
    assert!(
        z.approx_eq(&expect, 1e-9),
        "distance {}",
        z.distance(&expect)
    );
}

#[test]
fn secure_delta_equals_quantized_p_minus_y() {
    let mut fx = fixture(84);
    let fp = fx.config.fp;
    let (classes, m) = (3, 4);
    let mut client = Client::for_mlp(&fx.authority, 2, classes, fp, 85);
    let x = Matrix::zeros(m, 2);
    let y = Matrix::from_fn(m, classes, |r, c| if r % classes == c { 1.0 } else { 0.0 });
    let batch = client.encrypt_batch(&x, &y).unwrap();

    let p = Matrix::from_fn(m, classes, |r, c| ((r + c) % 5) as f64 / 5.0);
    let delta = secure_output_delta(
        &fx.authority,
        &mut fx.cache,
        batch.require_labels().unwrap(),
        &p,
        fp,
        Parallelism::Serial,
    )
    .unwrap();
    let expect = fp.roundtrip_matrix(&p).sub(&fp.roundtrip_matrix(&y));
    assert!(delta.approx_eq(&expect, 1e-9));
}

#[test]
fn secure_loss_equals_quantized_cross_entropy() {
    let mut fx = fixture(86);
    let fp = fx.config.fp;
    let (classes, m) = (4, 3);
    let mut client = Client::for_mlp(&fx.authority, 2, classes, fp, 87);
    let x = Matrix::zeros(m, 2);
    let labels = [0usize, 2, 3];
    let y = Matrix::from_fn(m, classes, |r, c| if labels[r] == c { 1.0 } else { 0.0 });
    let batch = client.encrypt_batch(&x, &y).unwrap();

    // A valid probability matrix.
    let p = Matrix::from_fn(m, classes, |r, c| {
        let logits = [(r + c) as f64 / 3.0, 0.5, 1.0, 0.2][c % 4];
        logits.exp()
    });
    let row_sums = p.sum_cols();
    let p = Matrix::from_fn(m, classes, |r, c| p[(r, c)] / row_sums[(r, 0)]);

    let loss = secure_cross_entropy_loss(
        &fx.authority,
        &mut fx.cache,
        batch.require_labels().unwrap(),
        &p,
        fp,
        Parallelism::Serial,
    )
    .unwrap();

    // Reference with the same quantization of y and log p.
    let mut expect = 0.0;
    for (r, &lab) in labels.iter().enumerate() {
        let yq = fp.roundtrip(1.0);
        let lq = fp.roundtrip(p[(r, lab)].ln());
        expect -= yq * lq;
    }
    expect /= m as f64;
    assert!((loss - expect).abs() < 1e-9, "{loss} vs {expect}");
}

#[test]
fn secure_gradient_equals_delta_x_transpose() {
    let mut fx = fixture(88);
    let fp = fx.config.fp;
    let grad_fp = fx.config.grad_fp;
    let (n, k, m) = (4, 3, 5);
    let mut client = Client::for_mlp(&fx.authority, n, 1, fp, 89);
    let x = Matrix::from_fn(m, n, |r, c| ((r * 3 + c * 7) % 10) as f64 / 10.0);
    let y = Matrix::zeros(m, 1);
    let batch = client.encrypt_batch(&x, &y).unwrap();

    let delta = Matrix::from_fn(k, m, |r, c| ((r + c) as f64 - 3.0) / 100.0);
    let unit_keys = derive_unit_keys(&fx.authority, n).unwrap();
    let grad = secure_dense_weight_grad(
        &fx.authority,
        &mut fx.cache,
        &batch,
        &delta,
        &unit_keys,
        fp,
        grad_fp,
        Parallelism::Threads(2),
    )
    .unwrap();

    // Reference: δ·X̂ᵀ on quantized data/deltas, in layer orientation.
    let xq = fp.roundtrip_matrix(&x); // m × n
    let expect = delta.matmul(&xq).transpose(); // n × k
    assert_eq!(grad.shape(), (n, k));
    // Dynamic delta quantization at grad_fp resolution: relative error
    // ~ 1e-4 of max |δ| per term, m terms.
    assert!(
        grad.approx_eq(&expect, 1e-3),
        "distance {}",
        grad.distance(&expect)
    );
}

#[test]
fn zero_delta_short_circuits_to_zero_gradient() {
    let mut fx = fixture(90);
    let (n, k, m) = (3, 2, 2);
    let mut client = Client::for_mlp(&fx.authority, n, 1, fx.config.fp, 91);
    let batch = client
        .encrypt_batch(&Matrix::zeros(m, n), &Matrix::zeros(m, 1))
        .unwrap();
    let unit_keys = derive_unit_keys(&fx.authority, n).unwrap();
    let grad = secure_dense_weight_grad(
        &fx.authority,
        &mut fx.cache,
        &batch,
        &Matrix::zeros(k, m),
        &unit_keys,
        fx.config.fp,
        fx.config.grad_fp,
        Parallelism::Serial,
    )
    .unwrap();
    assert!(grad.as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn shape_mismatches_yield_typed_errors() {
    let mut fx = fixture(92);
    let mut rng = StdRng::seed_from_u64(93);
    let layer = Dense::new(7, 3, &mut rng); // expects 7 features
    let mut client = Client::for_mlp(&fx.authority, 4, 1, fx.config.fp, 94);
    let batch = client
        .encrypt_batch(&Matrix::zeros(2, 4), &Matrix::zeros(2, 1))
        .unwrap();
    let err = secure_dense_forward(
        &fx.authority,
        &mut fx.cache,
        &batch,
        &layer,
        fx.config.fp,
        Parallelism::Serial,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        cryptonn_core::CryptoNnError::BatchShapeMismatch {
            expected: 7,
            got: 4,
            ..
        }
    ));
}

#[test]
fn quantization_codec_used_by_client_matches_fixed_point() {
    // The client quantizes with FixedPoint; make sure the public codec
    // agrees with what the secure forward assumed.
    let fp = FixedPoint::TWO_DECIMALS;
    for v in [0.0, 0.25, -0.999, 1.0] {
        assert!((fp.roundtrip(v) - v).abs() <= 0.005 + 1e-12);
    }
}
