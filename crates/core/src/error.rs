//! Error types for the CryptoNN framework.

use core::fmt;

use cryptonn_fe::FeError;
use cryptonn_smc::SmcError;

/// Errors from encrypted training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoNnError {
    /// An encrypted batch's dimensions do not match the model.
    BatchShapeMismatch {
        /// What the model expects (features or classes).
        expected: usize,
        /// What the batch carries.
        got: usize,
        /// Which dimension disagreed.
        what: &'static str,
    },
    /// A prediction batch (no encrypted labels) was fed to a training
    /// step that needs the secure evaluation against `Y`.
    MissingLabels,
    /// The secure-computation layer failed.
    Smc(SmcError),
    /// A functional-encryption operation failed.
    Fe(FeError),
    /// The model contains a layer that cannot be captured into (or
    /// restored from) a checkpoint snapshot.
    SnapshotUnsupported {
        /// The offending layer's name.
        layer: &'static str,
    },
}

impl fmt::Display for CryptoNnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoNnError::BatchShapeMismatch {
                expected,
                got,
                what,
            } => {
                write!(
                    f,
                    "encrypted batch {what} mismatch: expected {expected}, got {got}"
                )
            }
            CryptoNnError::MissingLabels => {
                write!(f, "batch was encrypted without labels (prediction batch)")
            }
            CryptoNnError::Smc(e) => write!(f, "secure computation failed: {e}"),
            CryptoNnError::Fe(e) => write!(f, "functional encryption failed: {e}"),
            CryptoNnError::SnapshotUnsupported { layer } => {
                write!(
                    f,
                    "model snapshot unsupported: layer {layer:?} does not expose parameters"
                )
            }
        }
    }
}

impl std::error::Error for CryptoNnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CryptoNnError::Smc(e) => Some(e),
            CryptoNnError::Fe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SmcError> for CryptoNnError {
    fn from(e: SmcError) -> Self {
        CryptoNnError::Smc(e)
    }
}

impl From<FeError> for CryptoNnError {
    fn from(e: FeError) -> Self {
        CryptoNnError::Fe(e)
    }
}
