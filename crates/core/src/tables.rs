//! Cached baby-step giant-step tables.
//!
//! Training recomputes secure dot-products every iteration with bounds
//! that depend on the current weights; rebuilding a BSGS table per
//! iteration would dominate the runtime. The cache rounds requested
//! bounds up to the next power of two and reuses the table until a
//! larger bound is needed.

use std::path::PathBuf;
use std::sync::Arc;

use cryptonn_group::{DlogTable, SchnorrGroup};

/// A grow-only cache of one [`DlogTable`] per group.
#[derive(Debug)]
pub struct DlogTableCache {
    group: SchnorrGroup,
    current: Option<Arc<DlogTable>>,
    disk_dir: Option<PathBuf>,
}

impl DlogTableCache {
    /// Creates an empty cache for `group`.
    pub fn new(group: SchnorrGroup) -> Self {
        Self {
            group,
            current: None,
            disk_dir: None,
        }
    }

    /// The group this cache serves.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// Backs this cache with a fingerprinted on-disk table directory:
    /// subsequent builds go through [`DlogTable::load_or_build`], so a
    /// restarted server with the same group parameters reloads its BSGS
    /// tables instead of regenerating them.
    pub fn attach_dir(&mut self, dir: PathBuf) {
        self.disk_dir = Some(dir);
    }

    /// Returns a table covering at least `[-bound, bound]`, building or
    /// growing (to the next power of two) as needed.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn table(&mut self, bound: u64) -> Arc<DlogTable> {
        assert!(bound > 0, "dlog bound must be positive");
        match &self.current {
            Some(t) if t.bound() >= bound => t.clone(),
            _ => {
                let rounded = bound.next_power_of_two();
                let table = Arc::new(match &self.disk_dir {
                    Some(dir) => DlogTable::load_or_build(&self.group, rounded, dir),
                    None => DlogTable::new(&self.group, rounded),
                });
                self.current = Some(table.clone());
                table
            }
        }
    }

    /// The bound of the currently cached table, if any.
    pub fn current_bound(&self) -> Option<u64> {
        self.current.as_ref().map(|t| t.bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_group::SecurityLevel;

    #[test]
    fn grows_monotonically_and_reuses() {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        let mut cache = DlogTableCache::new(group.clone());
        assert_eq!(cache.current_bound(), None);

        let t1 = cache.table(1000);
        assert_eq!(t1.bound(), 1024);
        let t2 = cache.table(500);
        assert!(Arc::ptr_eq(&t1, &t2), "smaller bound reuses the table");
        let t3 = cache.table(5000);
        assert_eq!(t3.bound(), 8192);
        assert!(!Arc::ptr_eq(&t1, &t3));

        // The grown table still solves correctly.
        let target = group.exp(&group.scalar_from_i64(-4999));
        assert_eq!(t3.solve(&group, &target), Ok(-4999));
    }

    #[test]
    fn disk_backed_cache_persists_tables() {
        let dir =
            std::env::temp_dir().join(format!("cryptonn-tablecache-test-{}", std::process::id()));
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);

        let mut cold = DlogTableCache::new(group.clone());
        cold.attach_dir(dir.clone());
        let t = cold.table(1000);
        assert_eq!(t.bound(), 1024);

        // A fresh cache over the same directory reloads the same
        // geometry and still solves.
        let mut warm = DlogTableCache::new(group.clone());
        warm.attach_dir(dir.clone());
        let t2 = warm.table(1000);
        assert_eq!(t2.bound(), 1024);
        let target = group.exp(&group.scalar_from_i64(-777));
        assert_eq!(t2.solve(&group, &target), Ok(-777));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
