//! # cryptonn-core
//!
//! The CryptoNN framework (Xu, Joshi & Li, ICDCS 2019): **training
//! neural networks over encrypted data** with functional encryption —
//! Algorithm 2 of the paper, plus the CryptoCNN instantiation (§III-E)
//! and the §III-D MLP family.
//!
//! ## Roles (paper Fig. 1)
//!
//! - [`KeyAuthority`](cryptonn_fe::KeyAuthority) — the trusted third
//!   party: master keys, public-key distribution, function-key issuance
//!   under the permitted set `F`.
//! - [`Client`] — the data owner: pre-processes (one-hot labels,
//!   flattening, quantization) and encrypts; nothing leaves in the
//!   clear. Any number of clients may encrypt under the same `mpk`
//!   (distributed data sources); [`Client::from_keys`] builds a client
//!   from wire-delivered public parameters alone.
//! - Server — [`CryptoMlp`] / [`CryptoCnn`]: trains on the encrypted
//!   batches, learning only the functional outputs (first-layer
//!   products, `P − Y`, the loss, and the first-layer gradients). The
//!   training loops are generic over
//!   [`KeyService`](cryptonn_fe::KeyService), the authority-capability
//!   trait — hand them a [`KeyAuthority`](cryptonn_fe::KeyAuthority)
//!   for in-process training (below) or a wire-backed service for the
//!   federated session topology.
//!
//! ## Multi-client sessions
//!
//! The `cryptonn-protocol` crate drives these roles as message-passing
//! sessions: K clients shard a dataset, encrypt in a pipeline, and
//! stream batches to one server, with every exchange recorded into a
//! replayable transcript. In-process single-client training (this
//! crate's API, below) is exactly the `K = 1` special case:
//!
//! ```ignore
//! use cryptonn_protocol::{mlp_session_config, MlpSpec, TrainingSessionRunner};
//!
//! let spec = MlpSpec { feature_dim, hidden: vec![8], classes, objective };
//! let runner = TrainingSessionRunner::new(mlp_session_config(spec, 4, 10, 16, 1.0));
//! let outcome = runner.run_mlp(&dataset)?;          // 4 clients, recorded
//! let replay = cryptonn_protocol::replay_server(&outcome.transcript)?;
//! assert!(replay.matches_recording());              // bit-for-bit
//! ```
//!
//! ## Example (in-process, K = 1)
//!
//! ```
//! use cryptonn_core::{Client, CryptoMlp, CryptoNnConfig, Objective};
//! use cryptonn_fe::{KeyAuthority, PermittedFunctions};
//! use cryptonn_group::SchnorrGroup;
//! use cryptonn_matrix::Matrix;
//! use rand::SeedableRng;
//!
//! let config = CryptoNnConfig::fast();
//! let group = SchnorrGroup::precomputed(config.level);
//! let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 7);
//!
//! // Client encrypts a (tiny) batch.
//! let mut client = Client::for_mlp(&authority, 2, 1, config.fp, 8);
//! let x = Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]);
//! let y = Matrix::from_rows(&[&[1.0], &[0.0]]);
//! let batch = client.encrypt_batch(&x, &y)?;
//!
//! // Server trains without ever seeing x or y.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let mut model = CryptoMlp::binary(2, &[4], config, &mut rng);
//! let step = model.train_encrypted_batch(&authority, &batch, 1.0)?;
//! assert!(step.loss.is_finite());
//! # Ok::<(), cryptonn_core::CryptoNnError>(())
//! ```

mod client;
mod cnn;
mod config;
mod error;
mod mlp;
pub mod secure_steps;
mod tables;

pub use client::{Client, EncryptedBatch, EncryptedImageBatch};
pub use cnn::CryptoCnn;
pub use config::CryptoNnConfig;
pub use error::CryptoNnError;
pub use mlp::{CryptoMlp, LayerSnapshot, MlpSnapshot, Objective, StepOutput};
pub use tables::DlogTableCache;
