//! The client (data-owner) role of the CryptoNN architecture (Fig. 1).
//!
//! Clients pre-process their training data — flattening images, one-hot
//! encoding labels — quantize it, and encrypt it under the authority's
//! public keys before anything leaves their machine. Several clients
//! encrypting under the same `mpk` can feed one server-side model (the
//! paper's "distributed data source" property); the session layer in
//! `cryptonn-protocol` drives exactly that topology, constructing each
//! client from the wire-delivered public parameters via
//! [`Client::from_keys`].

use cryptonn_fe::{FeboPublicKey, FeipPublicKey, KeyAuthority};
use cryptonn_matrix::{ConvSpec, Matrix, Tensor4};
use cryptonn_smc::{
    encrypt_windows_with, EncryptedMatrix, EncryptedWindows, FixedPoint, Parallelism,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::CryptoNnError;

/// One encrypted mini-batch for MLP-style training.
///
/// `x` holds the sample feature vectors as FEIP-encrypted *columns*
/// (`features × batch`), which serve both the secure feed-forward
/// (`W·X`) and — via ciphertext combination — the secure first-layer
/// gradient (`δ·Xᵀ`). `y` holds one-hot labels (`classes × batch`)
/// encrypted both ways: FEIP columns for the secure loss inner product
/// and FEBO elements for the secure `Ŷ − Y` evaluation. Prediction
/// batches ([`Client::encrypt_features`]) carry no labels at all.
///
/// Serializable: this is the payload that crosses the wire in the
/// session layer's `EncryptedBatchMsg`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedBatch {
    pub(crate) x: EncryptedMatrix,
    pub(crate) y: Option<EncryptedMatrix>,
    pub(crate) classes: usize,
    pub(crate) batch_size: usize,
    /// Largest |quantized| feature value — public metadata the server
    /// needs to size its discrete-log search.
    pub(crate) max_abs_x: u64,
}

impl EncryptedBatch {
    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.x.rows()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The encrypted label matrix (`classes × batch`) if this batch was
    /// encrypted for training; `None` for prediction batches.
    pub fn labels(&self) -> Option<&EncryptedMatrix> {
        self.y.as_ref()
    }

    /// The encrypted labels, or a typed error for a prediction batch
    /// fed into a training step.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoNnError::MissingLabels`] when the batch carries
    /// no labels.
    pub fn require_labels(&self) -> Result<&EncryptedMatrix, CryptoNnError> {
        self.y.as_ref().ok_or(CryptoNnError::MissingLabels)
    }
}

/// One encrypted mini-batch for CNN training: FEIP-encrypted convolution
/// windows (Algorithm 3) plus encrypted labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncryptedImageBatch {
    pub(crate) windows: EncryptedWindows,
    pub(crate) y: EncryptedMatrix,
    pub(crate) batch_size: usize,
    pub(crate) max_abs_x: u64,
}

impl EncryptedImageBatch {
    /// Number of images in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Window vector length (`c·kh·kw`).
    pub fn window_dim(&self) -> usize {
        self.windows.dim()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.y.rows()
    }

    /// The encrypted label matrix (`classes × batch`).
    pub fn labels(&self) -> &EncryptedMatrix {
        &self.y
    }
}

/// A CryptoNN client: quantizes and encrypts its own data under the
/// authority's public keys.
///
/// Encryption is the client's dominant cost (`η + 1` fixed-base
/// exponentiations per sample); [`with_parallelism`](Self::with_parallelism)
/// fans the per-sample work out over threads through the FE layer's
/// batch-encrypt API. The ciphertexts are bit-identical regardless of
/// the thread count.
#[derive(Debug)]
pub struct Client {
    fp: FixedPoint,
    x_mpk: FeipPublicKey,
    y_mpk: FeipPublicKey,
    febo_mpk: FeboPublicKey,
    classes: usize,
    rng: StdRng,
    parallelism: Parallelism,
}

impl Client {
    /// Creates a client directly from public keys — the form the
    /// session layer uses, where the keys arrive in a `PublicParams`
    /// wire message rather than from a co-located authority.
    ///
    /// `x_mpk` fixes the feature (or window) dimension, `y_mpk` the
    /// class count.
    pub fn from_keys(
        x_mpk: FeipPublicKey,
        y_mpk: FeipPublicKey,
        febo_mpk: FeboPublicKey,
        fp: FixedPoint,
        seed: u64,
    ) -> Self {
        let classes = y_mpk.dimension();
        Self {
            fp,
            x_mpk,
            y_mpk,
            febo_mpk,
            classes,
            rng: StdRng::seed_from_u64(seed),
            parallelism: Parallelism::Serial,
        }
    }

    /// Creates a client for MLP-style training: feature vectors of
    /// length `feature_dim`, `classes` output classes.
    pub fn for_mlp(
        authority: &KeyAuthority,
        feature_dim: usize,
        classes: usize,
        fp: FixedPoint,
        seed: u64,
    ) -> Self {
        Self::from_keys(
            authority.feip_public_key(feature_dim),
            authority.feip_public_key(classes),
            authority.febo_public_key(),
            fp,
            seed,
        )
    }

    /// Creates a client for CNN training: the server has published its
    /// first-layer convolution geometry (`spec`, `in_channels`) per
    /// Algorithm 3, which fixes the window dimension.
    pub fn for_cnn(
        authority: &KeyAuthority,
        spec: &ConvSpec,
        in_channels: usize,
        classes: usize,
        fp: FixedPoint,
        seed: u64,
    ) -> Self {
        let window_dim = in_channels * spec.kh * spec.kw;
        Self::from_keys(
            authority.feip_public_key(window_dim),
            authority.feip_public_key(classes),
            authority.febo_public_key(),
            fp,
            seed,
        )
    }

    /// Sets the thread policy for this client's encryption fan-out.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The thread policy used for encryption.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The quantization this client applies.
    pub fn fixed_point(&self) -> FixedPoint {
        self.fp
    }

    /// The shared feature preamble of every encrypt path: shape checks,
    /// transpose to the paper's samples-as-columns layout, quantization,
    /// and the max-|x| metadata the server's dlog bound needs.
    fn quantize_features(&self, x: &Matrix<f64>) -> Result<(Matrix<i64>, u64), CryptoNnError> {
        if x.cols() != self.x_mpk.dimension() {
            return Err(CryptoNnError::BatchShapeMismatch {
                expected: self.x_mpk.dimension(),
                got: x.cols(),
                what: "feature dimension",
            });
        }
        let xq = self.fp.encode_matrix(&x.transpose()); // features × batch
        let max_abs_x = xq
            .as_slice()
            .iter()
            .map(|v| v.unsigned_abs())
            .max()
            .unwrap_or(0)
            .max(1);
        Ok((xq, max_abs_x))
    }

    /// The shared label preamble + encryption: shape checks, one-hot
    /// quantization, and the dual FEIP/FEBO label encryption that both
    /// the MLP and CNN batch paths use.
    fn encrypt_labels(
        &mut self,
        y_onehot: &Matrix<f64>,
        batch_size: usize,
    ) -> Result<EncryptedMatrix, CryptoNnError> {
        if y_onehot.cols() != self.classes {
            return Err(CryptoNnError::BatchShapeMismatch {
                expected: self.classes,
                got: y_onehot.cols(),
                what: "class count",
            });
        }
        if y_onehot.rows() != batch_size {
            return Err(CryptoNnError::BatchShapeMismatch {
                expected: batch_size,
                got: y_onehot.rows(),
                what: "batch size",
            });
        }
        let yq = self.fp.encode_matrix(&y_onehot.transpose()); // classes × batch
        Ok(EncryptedMatrix::encrypt_full_with(
            &yq,
            &self.y_mpk,
            &self.febo_mpk,
            &mut self.rng,
            self.parallelism,
        )?)
    }

    /// Encrypts an MLP batch: `x` is `(batch, features)`, `y_onehot` is
    /// `(batch, classes)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoNnError::BatchShapeMismatch`] if the shapes do
    /// not match this client's configuration.
    pub fn encrypt_batch(
        &mut self,
        x: &Matrix<f64>,
        y_onehot: &Matrix<f64>,
    ) -> Result<EncryptedBatch, CryptoNnError> {
        let (xq, max_abs_x) = self.quantize_features(x)?;
        let enc_y = self.encrypt_labels(y_onehot, x.rows())?;
        let enc_x = EncryptedMatrix::encrypt_columns_with(
            &xq,
            &self.x_mpk,
            &mut self.rng,
            self.parallelism,
        )?;
        Ok(EncryptedBatch {
            x: enc_x,
            y: Some(enc_y),
            classes: self.classes,
            batch_size: x.rows(),
            max_abs_x,
        })
    }

    /// Encrypts features only, for the prediction phase. The resulting
    /// batch carries no labels — and skips the label-encryption cost
    /// entirely — so feeding it to a training step fails with
    /// [`CryptoNnError::MissingLabels`] rather than training on dummy
    /// zeros.
    ///
    /// # Errors
    ///
    /// As [`encrypt_batch`](Self::encrypt_batch) for the feature checks.
    pub fn encrypt_features(&mut self, x: &Matrix<f64>) -> Result<EncryptedBatch, CryptoNnError> {
        let (xq, max_abs_x) = self.quantize_features(x)?;
        let enc_x = EncryptedMatrix::encrypt_columns_with(
            &xq,
            &self.x_mpk,
            &mut self.rng,
            self.parallelism,
        )?;
        Ok(EncryptedBatch {
            x: enc_x,
            y: None,
            classes: self.classes,
            batch_size: x.rows(),
            max_abs_x,
        })
    }

    /// Encrypts a CNN batch: `images` is `(batch, c, h, w)`, `y_onehot`
    /// is `(batch, classes)`. The windows are extracted and encrypted
    /// per Algorithm 3 using the server-published `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoNnError::BatchShapeMismatch`] on any shape
    /// disagreement.
    pub fn encrypt_image_batch(
        &mut self,
        images: &Tensor4,
        y_onehot: &Matrix<f64>,
        spec: &ConvSpec,
    ) -> Result<EncryptedImageBatch, CryptoNnError> {
        let (n, c, _, _) = images.shape();
        let window_dim = c * spec.kh * spec.kw;
        if window_dim != self.x_mpk.dimension() {
            return Err(CryptoNnError::BatchShapeMismatch {
                expected: self.x_mpk.dimension(),
                got: window_dim,
                what: "window dimension",
            });
        }
        let enc_y = self.encrypt_labels(y_onehot, n)?;
        let max_abs_x = images
            .as_slice()
            .iter()
            .map(|&v| self.fp.encode(v).unsigned_abs())
            .max()
            .unwrap_or(0)
            .max(1);
        let windows = encrypt_windows_with(
            images,
            spec,
            self.fp,
            &self.x_mpk,
            &mut self.rng,
            self.parallelism,
        )?;
        Ok(EncryptedImageBatch {
            windows,
            y: enc_y,
            batch_size: n,
            max_abs_x,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_fe::PermittedFunctions;
    use cryptonn_group::{SchnorrGroup, SecurityLevel};

    fn authority() -> KeyAuthority {
        let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 31)
    }

    #[test]
    fn encrypts_mlp_batch() {
        let auth = authority();
        let mut client = Client::for_mlp(&auth, 4, 3, FixedPoint::TWO_DECIMALS, 1);
        let x = Matrix::from_fn(5, 4, |r, c| (r + c) as f64 / 10.0);
        let y = Matrix::from_fn(5, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let batch = client.encrypt_batch(&x, &y).unwrap();
        assert_eq!(batch.batch_size(), 5);
        assert_eq!(batch.feature_dim(), 4);
        assert_eq!(batch.classes(), 3);
        assert!(batch.max_abs_x <= 100);
        assert!(batch.labels().is_some());
    }

    #[test]
    fn rejects_bad_shapes() {
        let auth = authority();
        let mut client = Client::for_mlp(&auth, 4, 3, FixedPoint::TWO_DECIMALS, 2);
        let x = Matrix::zeros(2, 5); // wrong feature dim
        let y = Matrix::zeros(2, 3);
        assert!(matches!(
            client.encrypt_batch(&x, &y),
            Err(CryptoNnError::BatchShapeMismatch {
                what: "feature dimension",
                ..
            })
        ));
        let x = Matrix::zeros(2, 4);
        let y = Matrix::zeros(3, 3); // wrong batch size
        assert!(matches!(
            client.encrypt_batch(&x, &y),
            Err(CryptoNnError::BatchShapeMismatch {
                what: "batch size",
                ..
            })
        ));
        let x = Matrix::zeros(2, 4);
        let y = Matrix::zeros(2, 2); // wrong class count
        assert!(matches!(
            client.encrypt_batch(&x, &y),
            Err(CryptoNnError::BatchShapeMismatch {
                what: "class count",
                ..
            })
        ));
    }

    #[test]
    fn encrypts_image_batch() {
        let auth = authority();
        let spec = ConvSpec::square(3, 1, 1);
        let mut client = Client::for_cnn(&auth, &spec, 1, 10, FixedPoint::TWO_DECIMALS, 3);
        let images = Tensor4::zeros(2, 1, 8, 8);
        let y = Matrix::from_fn(2, 10, |r, c| if c == r { 1.0 } else { 0.0 });
        let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.window_dim(), 9);
        assert_eq!(batch.classes(), 10);
    }

    #[test]
    fn inference_batch_has_no_labels() {
        let auth = authority();
        let mut client = Client::for_mlp(&auth, 2, 2, FixedPoint::TWO_DECIMALS, 4);
        let x = Matrix::from_rows(&[&[0.1, 0.9]]);
        let batch = client.encrypt_features(&x).unwrap();
        assert_eq!(batch.batch_size(), 1);
        assert_eq!(batch.classes(), 2);
        assert!(batch.labels().is_none());
        assert!(matches!(
            batch.require_labels(),
            Err(CryptoNnError::MissingLabels)
        ));
    }

    #[test]
    fn from_keys_matches_authority_constructor() {
        let auth = authority();
        let mut a = Client::for_mlp(&auth, 3, 2, FixedPoint::TWO_DECIMALS, 9);
        let mut b = Client::from_keys(
            auth.feip_public_key(3),
            auth.feip_public_key(2),
            auth.febo_public_key(),
            FixedPoint::TWO_DECIMALS,
            9,
        );
        let x = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 / 10.0);
        let y = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        // Same keys, same seed: bit-identical ciphertexts.
        assert_eq!(
            a.encrypt_batch(&x, &y).unwrap(),
            b.encrypt_batch(&x, &y).unwrap()
        );
    }
}
