//! The server-side secure computations of Algorithm 2.
//!
//! CryptoNN replaces exactly four computations of normal training with
//! secure ones; everything else stays plaintext on the server:
//!
//! 1. **Secure feed-forward** — first-layer pre-activation `W·X`
//!    ([`secure_dense_forward`]) or the first convolution
//!    ([`secure_conv_forward`]).
//! 2. **Secure evaluation** — the output-layer error `P − Y` against the
//!    encrypted labels ([`secure_output_delta`]).
//! 3. **Secure loss** — the cross-entropy `−⟨y, log p⟩`
//!    ([`secure_cross_entropy_loss`]).
//! 4. **Secure first-layer gradient** — `δ·Xᵀ`, via the linear
//!    homomorphism of FEIP ciphertexts ([`secure_dense_weight_grad`],
//!    [`secure_conv_weight_grad`]); the paper's Algorithm 2 leaves this
//!    step implicit, see DESIGN.md §4.

use cryptonn_fe::{feip, BasicOp, FeError, FeipFunctionKey, KeyService};
use cryptonn_matrix::Matrix;
use cryptonn_nn::{Conv2D, Dense};
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, derive_filter_keys, parallel_map, secure_convolution,
    secure_dot, secure_elementwise, FixedPoint, Parallelism,
};

use crate::client::{EncryptedBatch, EncryptedImageBatch};
use crate::error::CryptoNnError;
use crate::tables::DlogTableCache;

/// Largest |value| of a quantized operand matrix, floored at 1 — the
/// shared convention every dlog-bound computation uses.
pub(crate) fn max_abs_q(m: &Matrix<i64>) -> u64 {
    m.as_slice()
        .iter()
        .map(|v| v.unsigned_abs())
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Derives FEIP keys for all `dim` unit vectors — used to read the
/// coordinates of combined (gradient) ciphertexts. The trainer caches
/// the result across iterations.
///
/// # Errors
///
/// Propagates authority refusals.
pub fn derive_unit_keys<A: KeyService + ?Sized>(
    authority: &A,
    dim: usize,
) -> Result<Vec<FeipFunctionKey>, CryptoNnError> {
    let units: Vec<Vec<i64>> = (0..dim)
        .map(|j| {
            let mut unit = vec![0i64; dim];
            unit[j] = 1;
            unit
        })
        .collect();
    Ok(authority.derive_ip_keys(dim, &units)?)
}

/// Secure feed-forward for a dense first layer: computes
/// `Z₁ = X·W + b` (batch-major) from the encrypted batch, learning only
/// the product — exactly `a = g(skf(W)·enc(X) + b)` from §III-A before
/// the activation.
///
/// # Errors
///
/// Propagates secure-computation failures; a `DlogOutOfRange` inside
/// means the bound bookkeeping was violated (a bug, not a user error).
pub fn secure_dense_forward<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    batch: &EncryptedBatch,
    layer: &Dense,
    fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<Matrix<f64>, CryptoNnError> {
    let n = batch.feature_dim();
    if layer.in_dim() != n {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: layer.in_dim(),
            got: n,
            what: "feature dimension",
        });
    }
    // Server operand: quantized Wᵀ (out × in), one row per neuron.
    let wq = fp.encode_matrix(&layer.weights().transpose());
    let bound = (n as u64)
        .saturating_mul(batch.max_abs_x)
        .saturating_mul(max_abs_q(&wq));
    let table = cache.table(bound);

    let keys = derive_dot_keys(authority, &wq)?;
    let mpk = authority.feip_public_key(n)?;
    let zq = secure_dot(&mpk, &batch.x, &keys, &wq, &table, parallelism)?;
    // zq is (out × batch) carrying scale²; decode and return batch-major
    // with the bias added.
    let z = fp.decode_product_matrix(&zq).transpose();
    Ok(z.add_row_broadcast(layer.bias()))
}

/// Secure evaluation at the output layer: recovers `P − Y` from the
/// FEBO-encrypted labels and the server's plaintext predictions `p`
/// (`batch × classes`). This is the `∂L/∂A = P − Y` term of §III-D /
/// §III-E2, computed without learning `Y` itself beyond the difference.
///
/// # Errors
///
/// Propagates secure-computation failures.
pub fn secure_output_delta<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    enc_y: &cryptonn_smc::EncryptedMatrix,
    p: &Matrix<f64>,
    fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<Matrix<f64>, CryptoNnError> {
    if p.cols() != enc_y.rows() || p.rows() != enc_y.cols() {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: enc_y.rows(),
            got: p.cols(),
            what: "class count",
        });
    }
    // Server operand: quantized P in the classes × batch layout.
    let pq = fp.encode_matrix(&p.transpose());
    let scale = fp.scale() as u64;
    let bound = scale.saturating_add(max_abs_q(&pq)).saturating_mul(2);
    let table = cache.table(bound);

    let keys = derive_elementwise_keys(authority, enc_y, BasicOp::Sub, &pq)?;
    let febo_mpk = authority.febo_public_key()?;
    let diff = secure_elementwise(
        &febo_mpk,
        enc_y,
        &keys,
        BasicOp::Sub,
        &pq,
        &table,
        parallelism,
    )?;
    // diff = Yq − Pq at a single scale; P − Y = −decode(diff).
    Ok(fp.decode_matrix(&diff).transpose().neg())
}

/// Secure cross-entropy loss `−(1/N) Σ ⟨yₛ, log pₛ⟩` via one FEIP
/// decryption per sample against the encrypted label columns (§III-E2:
/// "the loss L = −⟨y, p′⟩ is a kind of inner-product computation").
///
/// # Errors
///
/// Propagates secure-computation failures.
pub fn secure_cross_entropy_loss<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    enc_y: &cryptonn_smc::EncryptedMatrix,
    p: &Matrix<f64>,
    fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<f64, CryptoNnError> {
    let classes = enc_y.rows();
    let samples = enc_y.cols();
    if p.rows() != samples || p.cols() != classes {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: samples,
            got: p.rows(),
            what: "batch size",
        });
    }

    // Server operand p′ = quantized log-probabilities, one row per sample.
    let logp = p.map(|v| v.max(1e-30).ln());
    let lq = fp.encode_matrix(&logp);
    let scale = fp.scale() as u64;
    let bound = (classes as u64)
        .saturating_mul(scale)
        .saturating_mul(max_abs_q(&lq));
    let table = cache.table(bound);

    // One key per sample (each sample has its own p′ vector), requested
    // as a single batch so a wire-backed authority sees one message.
    let ys: Vec<Vec<i64>> = (0..samples).map(|s| lq.row(s).to_vec()).collect();
    let keys = authority.derive_ip_keys(classes, &ys)?;
    let mpk = authority.feip_public_key(classes)?;
    let columns = enc_y.feip_columns()?;
    let results: Vec<Result<i64, FeError>> =
        parallel_map(samples, parallelism.thread_count(), |s| {
            feip::decrypt(&mpk, &columns[s], &keys[s], lq.row(s), &table)
        });
    let mut total = 0.0;
    for r in results {
        total += fp.decode_product(r?);
    }
    Ok(-total / samples as f64)
}

/// Secure first-layer weight gradient for a dense layer:
/// `∇W = δ·Xᵀ` where `δ` is the plaintext pre-activation delta
/// (`out × batch`) and `X` is only available encrypted. Each gradient
/// row is the δ-weighted combination of the encrypted sample columns,
/// read out coordinate-wise with the cached unit keys.
///
/// Returns the gradient in the layer's `(in, out)` orientation.
///
/// # Errors
///
/// Propagates secure-computation failures.
#[allow(clippy::too_many_arguments)]
pub fn secure_dense_weight_grad<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    batch: &EncryptedBatch,
    delta: &Matrix<f64>,
    unit_keys: &[FeipFunctionKey],
    data_fp: FixedPoint,
    grad_fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<Matrix<f64>, CryptoNnError> {
    let n = batch.feature_dim();
    let m = batch.batch_size();
    if delta.cols() != m {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: m,
            got: delta.cols(),
            what: "batch size",
        });
    }
    let k = delta.rows();
    // Dynamic fixed point: normalize by the batch's largest |δ| so tiny
    // deltas (vanishing gradients through sigmoid stacks) keep full
    // relative precision at the configured resolution.
    let max_delta = delta.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    if max_delta == 0.0 {
        return Ok(Matrix::zeros(n, k));
    }
    let factor = grad_fp.scale() as f64 / max_delta;
    let dq = delta.map(|v| (v * factor).round() as i64);
    let bound = (m as u64)
        .saturating_mul(max_abs_q(&dq))
        .saturating_mul(batch.max_abs_x);
    let table = cache.table(bound);

    let mpk = authority.feip_public_key(n)?;
    let columns = batch.x.feip_columns()?;
    let column_refs: Vec<&cryptonn_fe::FeipCiphertext> = columns.iter().collect();

    // One combined ciphertext per output neuron, then all n coordinates
    // read in one batched pass (shared ct₀ comb table, one inversion).
    // Rows are independent → parallelize across them.
    let rows: Vec<Result<Vec<i64>, CryptoNnError>> =
        parallel_map(k, parallelism.thread_count(), |i| {
            let combined = feip::combine(&mpk, &column_refs, dq.row(i))?;
            feip::decrypt_coordinates(&mpk, &combined, unit_keys, &table)
                .map_err(CryptoNnError::from)
        });

    let denom = factor * data_fp.scale() as f64;
    let mut grad = Matrix::zeros(k, n);
    for (i, row) in rows.into_iter().enumerate() {
        for (j, v) in row?.into_iter().enumerate() {
            grad[(i, j)] = v as f64 / denom;
        }
    }
    // (out × in) → layer orientation (in × out).
    Ok(grad.transpose())
}

/// Secure feed-forward for a first convolutional layer: Algorithm 3's
/// secure convolution, decoded back to floats with the layer bias added.
/// Output is `(batch, out_c·oh·ow)` in the standard layer layout.
///
/// # Errors
///
/// Propagates secure-computation failures.
pub fn secure_conv_forward<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    batch: &EncryptedImageBatch,
    layer: &Conv2D,
    fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<Matrix<f64>, CryptoNnError> {
    let dim = batch.window_dim();
    if layer.filters().cols() != dim {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: layer.filters().cols(),
            got: dim,
            what: "window dimension",
        });
    }
    let wq = fp.encode_matrix(layer.filters());
    let bound = (dim as u64)
        .saturating_mul(batch.max_abs_x)
        .saturating_mul(max_abs_q(&wq));
    let table = cache.table(bound);

    let keys = derive_filter_keys(authority, &wq)?;
    let mpk = authority.feip_public_key(dim)?;
    let zq = secure_convolution(&mpk, &batch.windows, &keys, &wq, &table, parallelism)?;
    let mut z = fp.decode_product_matrix(&zq);

    // Add the per-channel bias in the (oc·oh + oy)·ow + ox layout.
    let (oc, oh, ow) = layer.out_shape();
    debug_assert_eq!(z.cols(), oc * oh * ow);
    for r in 0..z.rows() {
        for c in 0..oc {
            for px in 0..oh * ow {
                z[(r, c * oh * ow + px)] += layer.bias()[c];
            }
        }
    }
    Ok(z)
}

/// Secure first-layer filter gradient for a convolutional layer:
/// `∇W[oc] = Σ_windows Gp[window, oc] · window`, computed by combining
/// the encrypted window ciphertexts with the plaintext per-window deltas
/// `Gp` (`n_windows × out_c`).
///
/// Returns the gradient in the layer's `(out_c, c·kh·kw)` orientation.
///
/// # Errors
///
/// Propagates secure-computation failures.
#[allow(clippy::too_many_arguments)]
pub fn secure_conv_weight_grad<A: KeyService + ?Sized>(
    authority: &A,
    cache: &mut DlogTableCache,
    batch: &EncryptedImageBatch,
    grad_rows: &Matrix<f64>,
    unit_keys: &[FeipFunctionKey],
    data_fp: FixedPoint,
    grad_fp: FixedPoint,
    parallelism: Parallelism,
) -> Result<Matrix<f64>, CryptoNnError> {
    let windows = batch.windows.ciphertexts();
    if grad_rows.rows() != windows.len() {
        return Err(CryptoNnError::BatchShapeMismatch {
            expected: windows.len(),
            got: grad_rows.rows(),
            what: "window count",
        });
    }
    let dim = batch.window_dim();
    let out_c = grad_rows.cols();
    // Dynamic fixed point (see secure_dense_weight_grad).
    let max_delta = grad_rows
        .as_slice()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b.abs()));
    if max_delta == 0.0 {
        return Ok(Matrix::zeros(out_c, dim));
    }
    let factor = grad_fp.scale() as f64 / max_delta;
    let gq = grad_rows.map(|v| (v * factor).round() as i64);
    let bound = (windows.len() as u64)
        .saturating_mul(max_abs_q(&gq))
        .saturating_mul(batch.max_abs_x);
    let table = cache.table(bound);

    let mpk = authority.feip_public_key(dim)?;
    let window_refs: Vec<&cryptonn_fe::FeipCiphertext> = windows.iter().collect();

    let rows: Vec<Result<Vec<i64>, CryptoNnError>> =
        parallel_map(out_c, parallelism.thread_count(), |oc| {
            let weights = gq.col(oc);
            let combined = feip::combine(&mpk, &window_refs, &weights)?;
            feip::decrypt_coordinates(&mpk, &combined, unit_keys, &table)
                .map_err(CryptoNnError::from)
        });

    let denom = factor * data_fp.scale() as f64;
    let mut grad = Matrix::zeros(out_c, dim);
    for (oc, row) in rows.into_iter().enumerate() {
        for (j, v) in row?.into_iter().enumerate() {
            grad[(oc, j)] = v as f64 / denom;
        }
    }
    Ok(grad)
}
