//! CryptoNN over fully-connected networks — Algorithm 2 for the
//! §III-D model family (and any MLP).

use cryptonn_fe::{FeipFunctionKey, KeyService};
use cryptonn_matrix::Matrix;
use cryptonn_nn::{
    Activation, ActivationLayer, Dense, Layer, Loss, Mse, Sequential, SoftmaxCrossEntropy,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::client::EncryptedBatch;
use crate::config::CryptoNnConfig;
use crate::error::CryptoNnError;
use crate::secure_steps::{
    derive_unit_keys, secure_cross_entropy_loss, secure_dense_forward, secure_dense_weight_grad,
    secure_output_delta,
};
use crate::tables::DlogTableCache;

/// The training objective of a CryptoNN model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Sigmoid output + mean squared error (§III-D).
    SigmoidMse,
    /// Softmax output + cross-entropy (§III-E2).
    SoftmaxCrossEntropy,
}

/// One parameterized plaintext layer's state inside an [`MlpSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSnapshot {
    /// The layer's index in the plaintext tail (network order).
    pub idx: usize,
    /// The layer's weights.
    pub w: Matrix<f64>,
    /// The layer's bias.
    pub b: Matrix<f64>,
}

/// A serializable snapshot of everything a [`CryptoMlp`] mutates
/// between training steps: the secure first layer's parameters, every
/// parameterized plaintext layer's parameters, and the lazily-derived
/// unit keys.
///
/// The unit keys are part of the snapshot on purpose: a restored model
/// that had already derived them must **not** re-request them from the
/// authority, or its key-request stream would diverge from a recorded
/// transcript of the original run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpSnapshot {
    /// Secure first-layer weights, `(in, hidden)`.
    pub w1: Matrix<f64>,
    /// Secure first-layer bias, `(1, hidden)`.
    pub b1: Matrix<f64>,
    /// Each parameterized plaintext layer's state, in network order.
    /// Stateless layers (activations) are omitted.
    pub rest: Vec<LayerSnapshot>,
    /// The cached first-layer unit keys, if they were derived.
    pub unit_keys: Option<Vec<FeipFunctionKey>>,
}

/// Metrics returned by one encrypted training step.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// The batch loss (computed securely for cross-entropy; derived from
    /// the securely-obtained `P − Y` for MSE).
    pub loss: f64,
    /// The model outputs for the batch (`batch × classes`): softmax
    /// probabilities or sigmoid activations.
    pub predictions: Matrix<f64>,
}

/// A CryptoNN multi-layer perceptron: a [`Dense`] first layer whose
/// forward product and weight gradient are computed **over encrypted
/// inputs**, followed by plaintext hidden layers, with the output-layer
/// evaluation computed **over encrypted labels**.
///
/// The server running this model never sees the training data or labels
/// in the clear — only the functional-encryption outputs that Algorithm
/// 2 authorizes.
#[derive(Debug)]
pub struct CryptoMlp {
    first: Dense,
    rest: Sequential,
    objective: Objective,
    config: CryptoNnConfig,
    cache: DlogTableCache,
    unit_keys: Option<Vec<FeipFunctionKey>>,
}

impl CryptoMlp {
    /// Builds a CryptoNN MLP: `feature_dim → hidden[0] → … → classes`,
    /// sigmoid activations throughout (the paper's choice).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or any width is zero.
    pub fn new<R: Rng + ?Sized>(
        feature_dim: usize,
        hidden: &[usize],
        classes: usize,
        objective: Objective,
        config: CryptoNnConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!hidden.is_empty(), "at least one hidden layer required");
        let first = Dense::new(feature_dim, hidden[0], rng);
        let mut rest = Sequential::new();
        rest.push(ActivationLayer::new(Activation::Sigmoid));
        let mut prev = hidden[0];
        for &width in &hidden[1..] {
            rest.push(Dense::new(prev, width, rng));
            rest.push(ActivationLayer::new(Activation::Sigmoid));
            prev = width;
        }
        rest.push(Dense::new(prev, classes, rng));
        if objective == Objective::SigmoidMse {
            rest.push(ActivationLayer::new(Activation::Sigmoid));
        }
        let group = cryptonn_group::SchnorrGroup::precomputed(config.level);
        Self {
            first,
            rest,
            objective,
            config,
            cache: DlogTableCache::new(group),
            unit_keys: None,
        }
    }

    /// The §III-D binary classifier: one output, sigmoid + MSE.
    pub fn binary<R: Rng + ?Sized>(
        feature_dim: usize,
        hidden: &[usize],
        config: CryptoNnConfig,
        rng: &mut R,
    ) -> Self {
        Self::new(feature_dim, hidden, 1, Objective::SigmoidMse, config, rng)
    }

    /// The secure first layer's plaintext twin (weights live here).
    pub fn first_layer(&self) -> &Dense {
        &self.first
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The deployment configuration.
    pub fn config(&self) -> &CryptoNnConfig {
        &self.config
    }

    /// Backs this model's BSGS table cache with an on-disk directory
    /// (see [`DlogTableCache::attach_dir`]) so warm restarts skip the
    /// table builds.
    pub fn attach_table_cache(&mut self, dir: std::path::PathBuf) {
        self.cache.attach_dir(dir);
    }

    /// Captures the model's between-step mutable state into a
    /// [`MlpSnapshot`].
    ///
    /// # Errors
    ///
    /// [`CryptoNnError::SnapshotUnsupported`] if a plaintext layer has
    /// trainable parameters but does not expose them via
    /// [`Layer::params`].
    pub fn snapshot(&self) -> Result<MlpSnapshot, CryptoNnError> {
        let mut rest = Vec::new();
        for idx in 0..self.rest.len() {
            let layer = self.rest.layer(idx).expect("index in range");
            match layer.params() {
                Some((w, b)) => rest.push(LayerSnapshot {
                    idx,
                    w: w.clone(),
                    b: b.clone(),
                }),
                None if layer.param_count() == 0 => {}
                None => {
                    return Err(CryptoNnError::SnapshotUnsupported {
                        layer: layer.name(),
                    })
                }
            }
        }
        Ok(MlpSnapshot {
            w1: self.first.weights().clone(),
            b1: self.first.bias().clone(),
            rest,
            unit_keys: self.unit_keys.clone(),
        })
    }

    /// Restores state previously captured by
    /// [`snapshot`](Self::snapshot). The model architecture must match
    /// the one the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// [`CryptoNnError::SnapshotUnsupported`] if a snapshot entry names
    /// a layer that does not accept parameters.
    ///
    /// # Panics
    ///
    /// Panics on parameter shape mismatch (a different architecture).
    pub fn restore(&mut self, snap: &MlpSnapshot) -> Result<(), CryptoNnError> {
        self.first.set_params(snap.w1.clone(), snap.b1.clone());
        for entry in &snap.rest {
            let layer = self
                .rest
                .layer_mut(entry.idx)
                .ok_or(CryptoNnError::SnapshotUnsupported { layer: "missing" })?;
            if !layer.set_params_from(&entry.w, &entry.b) {
                return Err(CryptoNnError::SnapshotUnsupported {
                    layer: layer.name(),
                });
            }
        }
        self.unit_keys = snap.unit_keys.clone();
        Ok(())
    }

    fn unit_keys<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
    ) -> Result<&[FeipFunctionKey], CryptoNnError> {
        if self.unit_keys.is_none() {
            self.unit_keys = Some(derive_unit_keys(authority, self.first.in_dim())?);
        }
        Ok(self.unit_keys.as_deref().expect("just inserted"))
    }

    /// Converts final-layer outputs to predictions per the objective.
    fn predictions(&self, out: &Matrix<f64>) -> Matrix<f64> {
        match self.objective {
            Objective::SigmoidMse => out.clone(),
            Objective::SoftmaxCrossEntropy => cryptonn_nn::softmax(out),
        }
    }

    /// One Algorithm-2 training iteration on an encrypted batch.
    ///
    /// Secure feed-forward → plaintext forward → secure evaluation →
    /// plaintext back-propagation → secure first-layer gradient →
    /// parameter update.
    ///
    /// # Errors
    ///
    /// Propagates secure-computation failures; the model is unchanged on
    /// error.
    pub fn train_encrypted_batch<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
        batch: &EncryptedBatch,
        lr: f64,
    ) -> Result<StepOutput, CryptoNnError> {
        let m = batch.batch_size() as f64;
        let enc_y = batch.require_labels()?;
        let (fp, grad_fp, par) = (self.config.fp, self.config.grad_fp, self.config.parallelism);

        // --- secure feed-forward (Algorithm 2 lines 4-5) ---
        let z1 = secure_dense_forward(authority, &mut self.cache, batch, &self.first, fp, par)?;

        // --- normal feed-forward (line 6) ---
        let out = self.rest.forward(&z1, true);
        let p = self.predictions(&out);

        // --- secure back-propagation / evaluation (lines 7-9) ---
        let p_minus_y = secure_output_delta(authority, &mut self.cache, enc_y, &p, fp, par)?;
        let loss = match self.objective {
            Objective::SigmoidMse => {
                // L = (1/2N)‖P − Y‖², derivable from the secure P − Y.
                0.5 * p_minus_y.hadamard(&p_minus_y).sum() / m
            }
            Objective::SoftmaxCrossEntropy => {
                secure_cross_entropy_loss(authority, &mut self.cache, enc_y, &p, fp, par)?
            }
        };

        // For both objectives the output-layer gradient is (P − Y)/N:
        // w.r.t. the sigmoid activation for MSE (the sigmoid layer in
        // `rest` then applies its own derivative), w.r.t. the logits for
        // softmax cross-entropy (§III-E2).
        let grad_out = p_minus_y.scale(1.0 / m);

        // --- normal back-propagation (line 10) ---
        let grad_z1 = self.rest.backward(&grad_out);

        // --- secure first-layer gradient + update (line 11) ---
        let delta1 = grad_z1.transpose(); // (hidden × batch)
        let unit_keys = {
            // Borrow dance: unit keys are cached lazily.
            self.unit_keys(authority)?.to_vec()
        };
        let grad_w1 = secure_dense_weight_grad(
            authority,
            &mut self.cache,
            batch,
            &delta1,
            &unit_keys,
            fp,
            grad_fp,
            par,
        )?;
        let grad_b1 = grad_z1.sum_rows();

        let new_w = self.first.weights().sub(&grad_w1.scale(lr));
        let new_b = self.first.bias().sub(&grad_b1.scale(lr));
        self.first.set_params(new_w, new_b);
        self.rest.update(lr);

        Ok(StepOutput {
            loss,
            predictions: p,
        })
    }

    /// Encrypted prediction (the FE-based prediction path of §III-D):
    /// secure first layer, plaintext remainder. The server learns the
    /// prediction, as the paper's FE mode allows.
    ///
    /// # Errors
    ///
    /// Propagates secure-computation failures.
    pub fn predict_encrypted<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
        batch: &EncryptedBatch,
    ) -> Result<Matrix<f64>, CryptoNnError> {
        let z1 = secure_dense_forward(
            authority,
            &mut self.cache,
            batch,
            &self.first,
            self.config.fp,
            self.config.parallelism,
        )?;
        let out = self.rest.forward(&z1, false);
        Ok(self.predictions(&out))
    }

    /// Batched encrypted prediction: serves **several** independent
    /// encrypted feature batches in one secure sweep — the decrypt core
    /// of the inference serving layer's request coalescing.
    ///
    /// All batches share the model's quantized first-layer weights, so
    /// the function keys are derived (or, behind a
    /// [`CachingKeyService`](cryptonn_fe::CachingKeyService), looked
    /// up) **once**, every ciphertext column across every batch runs
    /// through one [`decrypt_cells`](cryptonn_fe::feip::decrypt_cells)
    /// sweep sharing a single modular inversion, and the plaintext
    /// remainder of the network runs per batch.
    ///
    /// Returns one prediction matrix per input batch, in order; each is
    /// bit-identical to a separate
    /// [`predict_encrypted`](Self::predict_encrypted) call on that
    /// batch.
    ///
    /// # Errors
    ///
    /// Propagates secure-computation failures; shape mismatches name
    /// the offending batch's feature dimension.
    pub fn predict_encrypted_many<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
        batches: &[&EncryptedBatch],
    ) -> Result<Vec<Matrix<f64>>, CryptoNnError> {
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.first.in_dim();
        let fp = self.config.fp;
        let mut max_abs_x = 1u64;
        for batch in batches {
            if batch.feature_dim() != n {
                return Err(CryptoNnError::BatchShapeMismatch {
                    expected: n,
                    got: batch.feature_dim(),
                    what: "feature dimension",
                });
            }
            max_abs_x = max_abs_x.max(batch.max_abs_x);
        }
        // One key derivation for the whole sweep (a cache hit when the
        // serving layer wraps the authority in a key cache).
        let wq = fp.encode_matrix(&self.first.weights().transpose());
        let keys = cryptonn_smc::derive_dot_keys(authority, &wq)?;
        let mpk = authority.feip_public_key(n)?;
        let bound = (n as u64)
            .saturating_mul(max_abs_x)
            .saturating_mul(crate::secure_steps::max_abs_q(&wq));
        let table = self.cache.table(bound);

        let encs: Vec<&cryptonn_smc::EncryptedMatrix> = batches.iter().map(|b| &b.x).collect();
        let zqs = cryptonn_smc::secure_dot_multi(
            &mpk,
            &encs,
            &keys,
            &wq,
            &table,
            self.config.parallelism,
        )?;
        zqs.into_iter()
            .map(|zq| {
                let z = fp
                    .decode_product_matrix(&zq)
                    .transpose()
                    .add_row_broadcast(self.first.bias());
                let out = self.rest.forward(&z, false);
                Ok(self.predictions(&out))
            })
            .collect()
    }

    /// Plaintext forward pass — used by the evaluation harness to score
    /// the trained model on a test set it owns.
    pub fn predict_plain(&mut self, x: &Matrix<f64>) -> Matrix<f64> {
        let z1 = self.first.forward(x, false);
        let out = self.rest.forward(&z1, false);
        self.predictions(&out)
    }

    /// Reference plaintext training step with *identical* quantization,
    /// used by the equivalence tests: the encrypted and plaintext paths
    /// must produce the same numbers up to quantization error.
    pub fn train_plain_batch(&mut self, x: &Matrix<f64>, y: &Matrix<f64>, lr: f64) -> StepOutput {
        let m = x.rows() as f64;
        let z1 = self.first.forward(x, true);
        let out = self.rest.forward(&z1, true);
        let p = self.predictions(&out);
        let loss = match self.objective {
            Objective::SigmoidMse => Mse.forward(&p, y),
            Objective::SoftmaxCrossEntropy => SoftmaxCrossEntropy.forward(&out, y),
        };
        let grad_out = p.sub(y).scale(1.0 / m);
        let grad_z1 = self.rest.backward(&grad_out);
        let _ = self.first.backward(&grad_z1);
        self.first.update(lr);
        self.rest.update(lr);
        StepOutput {
            loss,
            predictions: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use cryptonn_fe::{KeyAuthority, PermittedFunctions};
    use cryptonn_group::SchnorrGroup;
    use cryptonn_nn::metrics::one_hot;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn authority(config: &CryptoNnConfig) -> KeyAuthority {
        let group = SchnorrGroup::precomputed(config.level);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 41)
    }

    #[test]
    fn encrypted_step_close_to_plaintext_step() {
        let config = CryptoNnConfig::fast();
        let auth = authority(&config);
        let mut rng = StdRng::seed_from_u64(42);

        // Two identical twins.
        let mut crypto =
            CryptoMlp::new(4, &[5], 2, Objective::SoftmaxCrossEntropy, config, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut plain = CryptoMlp::new(
            4,
            &[5],
            2,
            Objective::SoftmaxCrossEntropy,
            config,
            &mut rng2,
        );

        let x = Matrix::from_fn(6, 4, |r, c| ((r * 3 + c) % 7) as f64 / 7.0);
        let y = one_hot(&[0, 1, 0, 1, 1, 0], 2);

        let mut client = Client::for_mlp(&auth, 4, 2, config.fp, 43);
        let batch = client.encrypt_batch(&x, &y).unwrap();

        let enc_out = crypto.train_encrypted_batch(&auth, &batch, 0.5).unwrap();
        let plain_out = plain.train_plain_batch(&x, &y, 0.5);

        // Quantization at two decimals: predictions agree to ~1e-2.
        assert!(
            enc_out.predictions.approx_eq(&plain_out.predictions, 0.05),
            "encrypted and plaintext predictions must track each other"
        );
        assert!((enc_out.loss - plain_out.loss).abs() < 0.05);
        // Updated first-layer weights stay close.
        assert!(crypto
            .first
            .weights()
            .approx_eq(plain.first.weights(), 0.05));
    }

    #[test]
    fn encrypted_training_learns_a_separable_task() {
        let config = CryptoNnConfig::fast();
        let auth = authority(&config);
        let mut rng = StdRng::seed_from_u64(44);
        let mut model = CryptoMlp::binary(2, &[4], config, &mut rng);

        // Linearly separable blobs.
        let x = Matrix::from_fn(10, 2, |r, c| {
            let sign = if r % 2 == 0 { 0.9 } else { 0.1 };
            sign + (c as f64) * 0.01
        });
        let y = Matrix::from_fn(10, 1, |r, _| if r % 2 == 0 { 1.0 } else { 0.0 });

        let mut client = Client::for_mlp(&auth, 2, 1, config.fp, 45);
        let batch = client.encrypt_batch(&x, &y).unwrap();
        let mut losses = Vec::new();
        for _ in 0..80 {
            losses.push(
                model
                    .train_encrypted_batch(&auth, &batch, 2.0)
                    .unwrap()
                    .loss,
            );
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss should drop: {losses:?}"
        );
        // Prediction phase (encrypted features only).
        let pred_batch = client.encrypt_features(&x).unwrap();
        let p = model.predict_encrypted(&auth, &pred_batch).unwrap();
        assert!(p[(0, 0)] > 0.5 && p[(1, 0)] < 0.5);
    }

    /// The coalesced serving sweep must be bit-identical to per-batch
    /// `predict_encrypted`, and must hit a wrapping key cache after the
    /// first sweep.
    #[test]
    fn batched_prediction_matches_single_batches_bitwise() {
        use cryptonn_fe::CachingKeyService;

        let config = CryptoNnConfig::fast();
        let auth = CachingKeyService::new(authority(&config), 64);
        let mut rng = StdRng::seed_from_u64(50);
        let mut model =
            CryptoMlp::new(4, &[5], 2, Objective::SoftmaxCrossEntropy, config, &mut rng);

        let mut client = Client::for_mlp(auth.inner(), 4, 2, config.fp, 51);
        let batches: Vec<_> = (0..3)
            .map(|b| {
                let x = Matrix::from_fn(2 + b, 4, |r, c| ((r * 5 + c + b) % 9) as f64 / 9.0);
                client.encrypt_features(&x).unwrap()
            })
            .collect();
        let refs: Vec<&EncryptedBatch> = batches.iter().collect();

        let singles: Vec<Matrix<f64>> = refs
            .iter()
            .map(|b| model.predict_encrypted(&auth, b).unwrap())
            .collect();
        let stats_before = auth.stats();
        let coalesced = model.predict_encrypted_many(&auth, &refs).unwrap();

        assert_eq!(singles, coalesced, "coalesced sweep must be bit-identical");
        let stats = auth.stats();
        assert_eq!(
            stats.misses, stats_before.misses,
            "frozen weights: the coalesced sweep derives nothing new"
        );
        assert!(stats.hits > stats_before.hits, "sweep must hit the cache");

        // Empty sweep is a no-op.
        assert!(model.predict_encrypted_many(&auth, &[]).unwrap().is_empty());
    }

    #[test]
    fn training_requires_permitted_functions() {
        let config = CryptoNnConfig::fast();
        let group = SchnorrGroup::precomputed(config.level);
        // dot-product only: the secure evaluation (Sub) must be refused.
        let auth = KeyAuthority::with_seed(
            group,
            cryptonn_fe::PermittedFunctions {
                dot_product: true,
                add: false,
                sub: false,
                mul: false,
                div: false,
            },
            46,
        );
        let mut rng = StdRng::seed_from_u64(47);
        let mut model = CryptoMlp::binary(2, &[3], config, &mut rng);
        let mut client = Client::for_mlp(&auth, 2, 1, config.fp, 48);
        let x = Matrix::from_rows(&[&[0.5, 0.5]]);
        let y = Matrix::from_rows(&[&[1.0]]);
        let batch = client.encrypt_batch(&x, &y).unwrap();
        let err = model.train_encrypted_batch(&auth, &batch, 0.1).unwrap_err();
        assert!(matches!(
            err,
            CryptoNnError::Smc(cryptonn_smc::SmcError::Fe(
                cryptonn_fe::FeError::FunctionNotPermitted(_)
            ))
        ));
    }
}
