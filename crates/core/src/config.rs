//! Configuration shared by the CryptoNN roles.

use cryptonn_group::SecurityLevel;
use cryptonn_smc::{FixedPoint, Parallelism};

/// Configuration for a CryptoNN deployment, fixing the crypto parameters
/// and quantization that authority, clients and server must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptoNnConfig {
    /// The group security level (the paper evaluates at 256 bits; tests
    /// and CI benches use smaller groups — same algorithms, faster
    /// arithmetic).
    pub level: SecurityLevel,
    /// Quantization for data, labels and weights (paper: two decimals).
    pub fp: FixedPoint,
    /// Quantization for back-propagated deltas in the secure gradient
    /// step. Deltas are typically ≪ 1, so they get a finer scale.
    pub grad_fp: FixedPoint,
    /// Thread policy for the decryption loops.
    pub parallelism: Parallelism,
}

impl CryptoNnConfig {
    /// The paper's setting: 256-bit group, two-decimal quantization.
    pub fn paper() -> Self {
        Self {
            level: SecurityLevel::Bits256,
            fp: FixedPoint::TWO_DECIMALS,
            grad_fp: FixedPoint::new(10_000),
            parallelism: Parallelism::available(),
        }
    }

    /// A fast setting for tests and CI benches: 64-bit group, otherwise
    /// identical pipeline.
    pub fn fast() -> Self {
        Self {
            level: SecurityLevel::Bits64,
            fp: FixedPoint::TWO_DECIMALS,
            grad_fp: FixedPoint::new(10_000),
            parallelism: Parallelism::available(),
        }
    }
}

impl Default for CryptoNnConfig {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(CryptoNnConfig::paper().level, SecurityLevel::Bits256);
        assert_eq!(CryptoNnConfig::fast().level, SecurityLevel::Bits64);
        assert_eq!(CryptoNnConfig::default(), CryptoNnConfig::fast());
        assert_eq!(CryptoNnConfig::fast().fp.scale(), 100);
    }
}
