//! CryptoCNN — the concrete CryptoNN instantiation over LeNet-5
//! (§III-E of the paper).

use cryptonn_fe::{FeipFunctionKey, KeyService};
use cryptonn_matrix::{ConvSpec, Matrix};
use cryptonn_nn::Loss;
use cryptonn_nn::{
    Activation, ActivationLayer, AvgPool2D, Conv2D, Dense, Layer, Sequential, SoftmaxCrossEntropy,
};
use rand::Rng;

use crate::client::EncryptedImageBatch;
use crate::config::CryptoNnConfig;
use crate::error::CryptoNnError;
use crate::mlp::StepOutput;
use crate::secure_steps::{
    derive_unit_keys, secure_conv_forward, secure_conv_weight_grad, secure_cross_entropy_loss,
    secure_output_delta,
};
use crate::tables::DlogTableCache;

/// A CryptoNN convolutional network: the first convolution runs over
/// FEIP-encrypted windows (Algorithm 3), the output layer evaluates
/// against FEBO/FEIP-encrypted labels, and everything in between is the
/// plaintext [`Sequential`] stack.
#[derive(Debug)]
pub struct CryptoCnn {
    first: Conv2D,
    rest: Sequential,
    config: CryptoNnConfig,
    cache: DlogTableCache,
    unit_keys: Option<Vec<FeipFunctionKey>>,
}

impl CryptoCnn {
    /// Builds a CryptoCNN from an explicit first convolution and
    /// remaining stack. The final `rest` layer must emit class logits
    /// (softmax + cross-entropy is applied per §III-E2).
    pub fn from_parts(first: Conv2D, rest: Sequential, config: CryptoNnConfig) -> Self {
        let group = cryptonn_group::SchnorrGroup::precomputed(config.level);
        Self {
            first,
            rest,
            config,
            cache: DlogTableCache::new(group),
            unit_keys: None,
        }
    }

    /// The paper's CryptoCNN: LeNet-5 over 1×28×28 inputs, 10 classes.
    pub fn lenet5<R: Rng + ?Sized>(config: CryptoNnConfig, rng: &mut R) -> Self {
        let first = Conv2D::new((1, 28, 28), 6, ConvSpec::square(5, 1, 2), rng);
        let mut rest = Sequential::new();
        rest.push(ActivationLayer::new(Activation::Sigmoid));
        rest.push(AvgPool2D::new((6, 28, 28), 2));
        rest.push(Conv2D::new((6, 14, 14), 16, ConvSpec::square(5, 1, 0), rng));
        rest.push(ActivationLayer::new(Activation::Sigmoid));
        rest.push(AvgPool2D::new((16, 10, 10), 2));
        rest.push(Dense::new(400, 120, rng));
        rest.push(ActivationLayer::new(Activation::Sigmoid));
        rest.push(Dense::new(120, 84, rng));
        rest.push(ActivationLayer::new(Activation::Sigmoid));
        rest.push(Dense::new(84, 10, rng));
        Self::from_parts(first, rest, config)
    }

    /// A scaled-down CryptoCNN over 1×14×14 inputs for fast tests and
    /// CI benches (topology mirrors `cryptonn_nn::lenet_small`).
    pub fn lenet_small<R: Rng + ?Sized>(
        config: CryptoNnConfig,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let first = Conv2D::new((1, 14, 14), 3, ConvSpec::square(3, 1, 1), rng);
        let mut rest = Sequential::new();
        rest.push(ActivationLayer::new(Activation::Tanh));
        rest.push(AvgPool2D::new((3, 14, 14), 2));
        rest.push(Conv2D::new((3, 7, 7), 6, ConvSpec::square(4, 1, 0), rng));
        rest.push(ActivationLayer::new(Activation::Tanh));
        rest.push(AvgPool2D::new((6, 4, 4), 2));
        rest.push(Dense::new(6 * 2 * 2, 32, rng));
        rest.push(ActivationLayer::new(Activation::Tanh));
        rest.push(Dense::new(32, classes, rng));
        Self::from_parts(first, rest, config)
    }

    /// The secure first convolution's plaintext twin.
    pub fn first_layer(&self) -> &Conv2D {
        &self.first
    }

    /// The first-layer geometry — published to clients so they can
    /// window and encrypt their images (Algorithm 3, lines 9-16).
    pub fn conv_spec(&self) -> ConvSpec {
        *self.first.spec()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &CryptoNnConfig {
        &self.config
    }

    /// Backs this model's BSGS table cache with an on-disk directory
    /// (see [`DlogTableCache::attach_dir`]) so warm restarts skip the
    /// table builds.
    pub fn attach_table_cache(&mut self, dir: std::path::PathBuf) {
        self.cache.attach_dir(dir);
    }

    fn unit_keys<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
    ) -> Result<Vec<FeipFunctionKey>, CryptoNnError> {
        if self.unit_keys.is_none() {
            self.unit_keys = Some(derive_unit_keys(authority, self.first.filters().cols())?);
        }
        Ok(self.unit_keys.clone().expect("just inserted"))
    }

    /// Converts a `(batch, out_c·oh·ow)` output-layout gradient to the
    /// `(batch·oh·ow, out_c)` window-row layout used by the secure
    /// gradient step.
    fn output_to_rows(&self, grad: &Matrix<f64>) -> Matrix<f64> {
        let (out_c, oh, ow) = self.first.out_shape();
        let n = grad.rows();
        let mut rows = Matrix::zeros(n * oh * ow, out_c);
        let mut row = 0;
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for oc in 0..out_c {
                        rows[(row, oc)] = grad[(b, (oc * oh + oy) * ow + ox)];
                    }
                    row += 1;
                }
            }
        }
        rows
    }

    /// One Algorithm-2 training iteration on an encrypted image batch.
    ///
    /// # Errors
    ///
    /// Propagates secure-computation failures; the model is unchanged on
    /// error.
    pub fn train_encrypted_batch<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
        batch: &EncryptedImageBatch,
        lr: f64,
    ) -> Result<StepOutput, CryptoNnError> {
        let m = batch.batch_size() as f64;
        let (fp, grad_fp, par) = (self.config.fp, self.config.grad_fp, self.config.parallelism);

        // --- secure feed-forward: the first convolution (Algorithm 3) ---
        let z1 = secure_conv_forward(authority, &mut self.cache, batch, &self.first, fp, par)?;

        // --- normal feed-forward through the remaining layers ---
        let logits = self.rest.forward(&z1, true);
        let p = cryptonn_nn::softmax(&logits);

        // --- secure back-propagation / evaluation at the output ---
        let p_minus_y = secure_output_delta(authority, &mut self.cache, &batch.y, &p, fp, par)?;
        let loss = secure_cross_entropy_loss(authority, &mut self.cache, &batch.y, &p, fp, par)?;
        let grad_logits = p_minus_y.scale(1.0 / m);

        // --- normal back-propagation ---
        let grad_z1 = self.rest.backward(&grad_logits);

        // --- secure first-layer (filter) gradient + update ---
        let grad_rows = self.output_to_rows(&grad_z1);
        let unit_keys = self.unit_keys(authority)?;
        let grad_w = secure_conv_weight_grad(
            authority,
            &mut self.cache,
            batch,
            &grad_rows,
            &unit_keys,
            fp,
            grad_fp,
            par,
        )?;
        let grad_b = grad_rows.sum_rows();

        let new_w = self.first.filters().sub(&grad_w.scale(lr));
        let new_b: Vec<f64> = self
            .first
            .bias()
            .iter()
            .zip(grad_b.as_slice())
            .map(|(b, g)| b - lr * g)
            .collect();
        self.first.set_params(new_w, new_b);
        self.rest.update(lr);

        Ok(StepOutput {
            loss,
            predictions: p,
        })
    }

    /// Encrypted prediction: secure first convolution, plaintext rest.
    ///
    /// # Errors
    ///
    /// Propagates secure-computation failures.
    pub fn predict_encrypted<A: KeyService + ?Sized>(
        &mut self,
        authority: &A,
        batch: &EncryptedImageBatch,
    ) -> Result<Matrix<f64>, CryptoNnError> {
        let z1 = secure_conv_forward(
            authority,
            &mut self.cache,
            batch,
            &self.first,
            self.config.fp,
            self.config.parallelism,
        )?;
        let logits = self.rest.forward(&z1, false);
        Ok(cryptonn_nn::softmax(&logits))
    }

    /// Plaintext forward over flat `(batch, c·h·w)` inputs, for test-set
    /// scoring by the evaluation harness.
    pub fn predict_plain(&mut self, x: &Matrix<f64>) -> Matrix<f64> {
        let z1 = self.first.forward(x, false);
        let logits = self.rest.forward(&z1, false);
        cryptonn_nn::softmax(&logits)
    }

    /// Reference plaintext training step (baseline twin for equivalence
    /// tests and the Fig. 6 comparison).
    pub fn train_plain_batch(&mut self, x: &Matrix<f64>, y: &Matrix<f64>, lr: f64) -> StepOutput {
        let z1 = self.first.forward(x, true);
        let logits = self.rest.forward(&z1, true);
        let p = cryptonn_nn::softmax(&logits);
        let loss = SoftmaxCrossEntropy.forward(&logits, y);
        let grad_logits = SoftmaxCrossEntropy.backward(&logits, y);
        let grad_z1 = self.rest.backward(&grad_logits);
        let _ = self.first.backward(&grad_z1);
        self.first.update(lr);
        self.rest.update(lr);
        StepOutput {
            loss,
            predictions: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use cryptonn_fe::{KeyAuthority, PermittedFunctions};
    use cryptonn_group::SchnorrGroup;
    use cryptonn_matrix::Tensor4;
    use cryptonn_nn::metrics::one_hot;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn authority(config: &CryptoNnConfig) -> KeyAuthority {
        let group = SchnorrGroup::precomputed(config.level);
        KeyAuthority::with_seed(group, PermittedFunctions::all(), 51)
    }

    #[test]
    fn encrypted_cnn_step_close_to_plaintext_step() {
        let config = CryptoNnConfig::fast();
        let auth = authority(&config);

        let mut rng = StdRng::seed_from_u64(52);
        let mut crypto = CryptoCnn::lenet_small(config, 4, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(52);
        let mut plain = CryptoCnn::lenet_small(config, 4, &mut rng2);

        let mut data_rng = StdRng::seed_from_u64(53);
        let images = Tensor4::from_vec(
            3,
            1,
            14,
            14,
            (0..3 * 196)
                .map(|_| data_rng.random_range(0.0..1.0))
                .collect(),
        );
        let y = one_hot(&[0, 2, 3], 4);

        let spec = crypto.conv_spec();
        let mut client = Client::for_cnn(&auth, &spec, 1, 4, config.fp, 54);
        let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();

        let enc_out = crypto.train_encrypted_batch(&auth, &batch, 0.3).unwrap();
        let plain_out = plain.train_plain_batch(&images.flatten(), &y, 0.3);

        assert!(
            enc_out.predictions.approx_eq(&plain_out.predictions, 0.05),
            "encrypted and plaintext CNN predictions must track"
        );
        assert!((enc_out.loss - plain_out.loss).abs() < 0.05);
        assert!(crypto
            .first
            .filters()
            .approx_eq(plain.first.filters(), 0.05));
    }

    #[test]
    fn encrypted_prediction_matches_plain_forward() {
        let config = CryptoNnConfig::fast();
        let auth = authority(&config);
        let mut rng = StdRng::seed_from_u64(55);
        let mut model = CryptoCnn::lenet_small(config, 3, &mut rng);

        let images = Tensor4::from_vec(
            2,
            1,
            14,
            14,
            (0..392).map(|v| (v % 9) as f64 / 9.0).collect(),
        );
        let y = one_hot(&[0, 1], 3);
        let spec = model.conv_spec();
        let mut client = Client::for_cnn(&auth, &spec, 1, 3, config.fp, 56);
        let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();

        let p_enc = model.predict_encrypted(&auth, &batch).unwrap();
        let p_plain = model.predict_plain(&images.flatten());
        // Only the first layer differs (quantized vs exact); outputs are
        // probabilities, so tolerances are loose but meaningful.
        assert!(p_enc.approx_eq(&p_plain, 0.05));
    }
}
