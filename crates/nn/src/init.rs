//! Weight initialization schemes.

use cryptonn_matrix::Matrix;
use rand::{Rng, RngExt};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for
/// sigmoid/tanh networks such as LeNet-5.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Matrix<f64> {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`, suited to ReLU activations.
pub fn he_uniform<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    fan_in: usize,
    rng: &mut R,
) -> Matrix<f64> {
    let a = (6.0 / fan_in as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, 10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() < a));
        // Not all identical.
        assert!(m.as_slice().iter().any(|&v| v != m[(0, 0)]));
    }

    #[test]
    fn he_within_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = he_uniform(5, 5, 25, &mut rng);
        let a = (6.0 / 25.0f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() < a));
    }
}
