//! LeNet-5 — the paper's CryptoCNN backbone (§III-E), and the simple
//! binary-classification MLP of §III-D.

use cryptonn_matrix::ConvSpec;
use rand::Rng;

use crate::activation::{Activation, ActivationLayer};
use crate::conv_layer::Conv2D;
use crate::dense::Dense;
use crate::network::Sequential;
use crate::pool::AvgPool2D;

/// Builds the classic LeNet-5 for `1×28×28` inputs and 10 classes:
///
/// | layer | shape |
/// |-------|-------|
/// | C1: conv 6 @ 5×5, pad 2 | 6×28×28 |
/// | sigmoid + S2: avg-pool 2 | 6×14×14 |
/// | C3: conv 16 @ 5×5 | 16×10×10 |
/// | sigmoid + S4: avg-pool 2 | 16×5×5 |
/// | C5: dense 400 → 120 + sigmoid | 120 |
/// | F6: dense 120 → 84 + sigmoid | 84 |
/// | output: dense 84 → 10 (logits) | 10 |
///
/// Train with [`SoftmaxCrossEntropy`](crate::SoftmaxCrossEntropy), which
/// is the softmax + cross-entropy output the paper assumes in §III-E2.
pub fn lenet5<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    let mut net = Sequential::new();
    // C1: 1×28×28 → 6×28×28 (5×5, pad 2).
    net.push(Conv2D::new((1, 28, 28), 6, ConvSpec::square(5, 1, 2), rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    // S2: 6×28×28 → 6×14×14.
    net.push(AvgPool2D::new((6, 28, 28), 2));
    // C3: 6×14×14 → 16×10×10 (5×5, no pad).
    net.push(Conv2D::new((6, 14, 14), 16, ConvSpec::square(5, 1, 0), rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    // S4: 16×10×10 → 16×5×5.
    net.push(AvgPool2D::new((16, 10, 10), 2));
    // C5 (as dense): 400 → 120.
    net.push(Dense::new(400, 120, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    // F6: 120 → 84.
    net.push(Dense::new(120, 84, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    // Output logits: 84 → 10.
    net.push(Dense::new(84, 10, rng));
    net
}

/// A scaled-down LeNet for fast tests and CI benches: same topology, a
/// quarter of the filters, `1×14×14` inputs.
pub fn lenet_small<R: Rng + ?Sized>(rng: &mut R, classes: usize) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv2D::new((1, 14, 14), 3, ConvSpec::square(3, 1, 1), rng));
    net.push(ActivationLayer::new(Activation::Tanh));
    net.push(AvgPool2D::new((3, 14, 14), 2));
    net.push(Conv2D::new((3, 7, 7), 6, ConvSpec::square(4, 1, 0), rng));
    net.push(ActivationLayer::new(Activation::Tanh));
    net.push(AvgPool2D::new((6, 4, 4), 2));
    net.push(Dense::new(6 * 2 * 2, 32, rng));
    net.push(ActivationLayer::new(Activation::Tanh));
    net.push(Dense::new(32, classes, rng));
    net
}

/// The §III-D binary classifier: `A = θ(WX + b)` hidden layers with a
/// sigmoid output trained under MSE — `hidden` lists the hidden-layer
/// widths.
pub fn binary_mlp<R: Rng + ?Sized>(input_dim: usize, hidden: &[usize], rng: &mut R) -> Sequential {
    let mut net = Sequential::new();
    let mut prev = input_dim;
    for &width in hidden {
        net.push(Dense::new(prev, width, rng));
        net.push(ActivationLayer::new(Activation::Sigmoid));
        prev = width;
    }
    net.push(Dense::new(prev, 1, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lenet5_shapes_flow() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut net = lenet5(&mut rng);
        let x = Matrix::zeros(2, 784);
        let out = net.forward(&x, false);
        assert_eq!(out.shape(), (2, 10));
        // Parameter count of the classic architecture:
        // C1 6·25+6 = 156, C3 16·150+16 = 2416, C5 400·120+120 = 48120,
        // F6 120·84+84 = 10164, out 84·10+10 = 850 → 61706.
        assert_eq!(net.param_count(), 61_706);
    }

    #[test]
    fn lenet5_trains_one_step() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = lenet5(&mut rng);
        let x = Matrix::from_fn(4, 784, |r, c| ((r * 97 + c * 31) % 17) as f64 / 17.0);
        let y = crate::metrics::one_hot(&[0, 3, 7, 9], 10);
        let loss1 = net.train_batch(&x, &y, &crate::SoftmaxCrossEntropy, 0.1);
        let loss2 = net.train_batch(&x, &y, &crate::SoftmaxCrossEntropy, 0.1);
        assert!(loss1.is_finite() && loss2.is_finite());
        assert!(loss2 < loss1 + 0.5, "training must not diverge immediately");
    }

    #[test]
    fn lenet_small_shapes() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut net = lenet_small(&mut rng, 4);
        let x = Matrix::zeros(3, 196);
        assert_eq!(net.forward(&x, false).shape(), (3, 4));
    }

    #[test]
    fn binary_mlp_output_is_probability() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut net = binary_mlp(5, &[8, 4], &mut rng);
        let x = Matrix::from_fn(6, 5, |r, c| (r as f64 - c as f64) / 5.0);
        let out = net.forward(&x, false);
        assert_eq!(out.shape(), (6, 1));
        assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
