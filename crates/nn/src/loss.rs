//! Loss functions: softmax cross-entropy (CryptoCNN's output layer,
//! §III-E2) and mean squared error (the binary-classification model of
//! §III-D).

use cryptonn_matrix::Matrix;

/// A differentiable training objective over `(batch, outputs)` matrices.
pub trait Loss: core::fmt::Debug + Send {
    /// The scalar loss averaged over the batch.
    ///
    /// # Panics
    ///
    /// Implementations panic on shape mismatch between `output` and
    /// `target`.
    fn forward(&self, output: &Matrix<f64>, target: &Matrix<f64>) -> f64;

    /// The gradient of the loss with respect to `output`, already
    /// divided by the batch size.
    fn backward(&self, output: &Matrix<f64>, target: &Matrix<f64>) -> Matrix<f64>;
}

/// Numerically stable row-wise softmax.
pub fn softmax(logits: &Matrix<f64>) -> Matrix<f64> {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row_max = logits
            .row(r)
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for c in 0..out.cols() {
            let e = (logits[(r, c)] - row_max).exp();
            out[(r, c)] = e;
            sum += e;
        }
        for c in 0..out.cols() {
            out[(r, c)] /= sum;
        }
    }
    out
}

/// Softmax + cross-entropy with one-hot targets:
/// `L = -(1/N) Σᵢ Σₖ yᵢₖ log pᵢₖ`, gradient `(P − Y)/N` — the exact
/// expression derived in §III-E2 of the paper, whose `P − Y` term is the
/// secure element-wise subtraction CryptoNN performs on encrypted labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl Loss for SoftmaxCrossEntropy {
    fn forward(&self, logits: &Matrix<f64>, target: &Matrix<f64>) -> f64 {
        assert_eq!(logits.shape(), target.shape(), "loss shape mismatch");
        let p = softmax(logits);
        let n = logits.rows() as f64;
        let mut loss = 0.0;
        for r in 0..p.rows() {
            for c in 0..p.cols() {
                if target[(r, c)] != 0.0 {
                    loss -= target[(r, c)] * p[(r, c)].max(1e-300).ln();
                }
            }
        }
        loss / n
    }

    fn backward(&self, logits: &Matrix<f64>, target: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(logits.shape(), target.shape(), "loss shape mismatch");
        let n = logits.rows() as f64;
        softmax(logits).sub(target).scale(1.0 / n)
    }
}

/// Mean squared error `L = (1/2N) Σᵢ ‖ŷᵢ − yᵢ‖²`, gradient `(Ŷ − Y)/N` —
/// the §III-D objective whose `Ŷ − Y` is again a secure element-wise
/// subtraction in CryptoNN.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mse;

impl Loss for Mse {
    fn forward(&self, output: &Matrix<f64>, target: &Matrix<f64>) -> f64 {
        assert_eq!(output.shape(), target.shape(), "loss shape mismatch");
        let n = output.rows() as f64;
        let diff = output.sub(target);
        0.5 * diff.hadamard(&diff).sum() / n
    }

    fn backward(&self, output: &Matrix<f64>, target: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(output.shape(), target.shape(), "loss shape mismatch");
        let n = output.rows() as f64;
        output.sub(target).scale(1.0 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in the logits.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        let p = softmax(&a);
        assert!(p[(0, 0)].is_finite() && p[(0, 1)].is_finite());
        let b = Matrix::from_rows(&[&[0.0, 1.0]]);
        assert!(p.approx_eq(&softmax(&b), 1e-12));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let loss = SoftmaxCrossEntropy;
        let logits = Matrix::from_rows(&[&[100.0, 0.0, 0.0]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        assert!(loss.forward(&logits, &target) < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_is_p_minus_y_over_n() {
        let loss = SoftmaxCrossEntropy;
        let logits = Matrix::from_rows(&[&[0.2, -0.3, 0.9], &[1.0, 1.0, 1.0]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]);
        let g = loss.backward(&logits, &target);
        let expect = softmax(&logits).sub(&target).scale(0.5);
        assert!(g.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let loss = SoftmaxCrossEntropy;
        let logits = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0, 1.0]]);
        let g = loss.backward(&logits, &target);
        let eps = 1e-6;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp[(0, c)] += eps;
            let mut lm = logits.clone();
            lm[(0, c)] -= eps;
            let numeric = (loss.forward(&lp, &target) - loss.forward(&lm, &target)) / (2.0 * eps);
            assert!((numeric - g[(0, c)]).abs() < 1e-6, "logit {c}");
        }
    }

    #[test]
    fn mse_values_and_gradient() {
        let loss = Mse;
        let out = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        // (1 + 4) / 2 = 2.5
        assert!((loss.forward(&out, &target) - 2.5).abs() < 1e-12);
        let g = loss.backward(&out, &target);
        assert!(g.approx_eq(&Matrix::from_rows(&[&[1.0, 2.0]]), 1e-12));
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let loss = Mse;
        let out = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.1]]);
        let target = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let g = loss.backward(&out, &target);
        let eps = 1e-6;
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut op = out.clone();
            op[(r, c)] += eps;
            let mut om = out.clone();
            om[(r, c)] -= eps;
            let numeric = (loss.forward(&op, &target) - loss.forward(&om, &target)) / (2.0 * eps);
            assert!((numeric - g[(r, c)]).abs() < 1e-6);
        }
    }
}
