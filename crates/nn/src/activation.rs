//! Activation functions and their layer wrapper.

use core::fmt;

use cryptonn_matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// The activation functions used in the paper's models (§II-C lists
/// sigmoid, ReLU and tanh as the typical choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `θ(z) = 1 / (1 + e^{-z})` — used throughout LeNet-5 and the
    /// binary-classification example of §III-D.
    Sigmoid,
    /// `max(0, z)`.
    Relu,
    /// `tanh(z)`.
    Tanh,
}

impl Activation {
    /// Applies the function to a scalar.
    pub fn apply(&self, z: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
        }
    }

    /// The derivative expressed in terms of the *output* `a = f(z)`
    /// (all three functions admit this form, which avoids caching `z`).
    pub fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
        };
        f.write_str(name)
    }
}

/// An element-wise activation layer.
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    kind: Activation,
    /// Cached forward output, consumed by `backward`.
    output: Option<Matrix<f64>>,
}

impl ActivationLayer {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: Activation) -> Self {
        Self { kind, output: None }
    }

    /// The activation kind.
    pub fn kind(&self) -> Activation {
        self.kind
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        let out = input.map(|v| self.kind.apply(v));
        if train {
            self.output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64> {
        let output = self
            .output
            .as_ref()
            .expect("backward called before forward");
        grad_out.zip_map(output, |g, a| g * self.kind.derivative_from_output(a))
    }

    fn name(&self) -> &'static str {
        match self.kind {
            Activation::Sigmoid => "sigmoid",
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_values() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.9999);
        assert!(s.apply(-10.0) < 0.0001);
    }

    #[test]
    fn relu_values() {
        let r = Activation::Relu;
        assert_eq!(r.apply(-1.0), 0.0);
        assert_eq!(r.apply(2.5), 2.5);
        assert_eq!(r.derivative_from_output(0.0), 0.0);
        assert_eq!(r.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for kind in [Activation::Sigmoid, Activation::Tanh] {
            for z in [-2.0, -0.5, 0.0, 0.3, 1.7] {
                let numeric = (kind.apply(z + eps) - kind.apply(z - eps)) / (2.0 * eps);
                let analytic = kind.derivative_from_output(kind.apply(z));
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{kind} at {z}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn layer_forward_backward() {
        let mut layer = ActivationLayer::new(Activation::Sigmoid);
        let x = Matrix::from_rows(&[&[0.0, 1.0]]);
        let out = layer.forward(&x, true);
        assert!((out[(0, 0)] - 0.5).abs() < 1e-12);
        let grad = layer.backward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        // dσ/dz at z=0 is 0.25.
        assert!((grad[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]));
    }
}
