//! 2-D convolutional layer (im2col-based).

use cryptonn_matrix::{col2im, im2col, ConvSpec, Matrix, Tensor4};
use rand::Rng;

use crate::init::xavier_uniform;
use crate::layer::Layer;

/// A convolutional layer over `(batch, c·h·w)`-flattened inputs.
///
/// The layer knows its spatial input shape `(c, h, w)` and reshapes at
/// its boundaries so it composes with [`Dense`](crate::Dense) inside one
/// [`Sequential`](crate::Sequential) container.
#[derive(Debug, Clone)]
pub struct Conv2D {
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    spec: ConvSpec,
    /// `out_c × (in_c·kh·kw)` filter bank.
    w: Matrix<f64>,
    b: Vec<f64>,
    cols: Option<Matrix<f64>>,
    grad_w: Option<Matrix<f64>>,
    grad_b: Option<Vec<f64>>,
}

impl Conv2D {
    /// Creates a convolutional layer with Xavier-initialized filters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel exceeds the padded
    /// input.
    pub fn new<R: Rng + ?Sized>(
        in_shape: (usize, usize, usize),
        out_c: usize,
        spec: ConvSpec,
        rng: &mut R,
    ) -> Self {
        let (in_c, in_h, in_w) = in_shape;
        assert!(
            in_c > 0 && in_h > 0 && in_w > 0 && out_c > 0,
            "dimensions must be positive"
        );
        // Validate geometry eagerly.
        let _ = spec.output_size(in_h, in_w);
        let fan_in = in_c * spec.kh * spec.kw;
        let (oh, ow) = spec.output_size(in_h, in_w);
        let fan_out = out_c * oh * ow / (oh * ow).max(1);
        let w = xavier_uniform(out_c, fan_in, fan_in, fan_out.max(1), rng);
        Self {
            in_c,
            in_h,
            in_w,
            out_c,
            spec,
            w,
            b: vec![0.0; out_c],
            cols: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Creates a layer with explicit filters (tests, secure twin).
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistency.
    pub fn with_params(
        in_shape: (usize, usize, usize),
        spec: ConvSpec,
        w: Matrix<f64>,
        b: Vec<f64>,
    ) -> Self {
        let (in_c, in_h, in_w) = in_shape;
        assert_eq!(w.cols(), in_c * spec.kh * spec.kw, "filter width mismatch");
        assert_eq!(b.len(), w.rows(), "bias length mismatch");
        let _ = spec.output_size(in_h, in_w);
        Self {
            in_c,
            in_h,
            in_w,
            out_c: w.rows(),
            spec,
            w,
            b,
            cols: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Output shape `(out_c, oh, ow)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (oh, ow) = self.spec.output_size(self.in_h, self.in_w);
        (self.out_c, oh, ow)
    }

    /// Flattened output width `out_c·oh·ow`.
    pub fn out_dim(&self) -> usize {
        let (c, h, w) = self.out_shape();
        c * h * w
    }

    /// Flattened input width `in_c·in_h·in_w`.
    pub fn in_dim(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// The filter bank `out_c × (in_c·kh·kw)`.
    pub fn filters(&self) -> &Matrix<f64> {
        &self.w
    }

    /// The per-filter bias.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Overwrites filters and bias (secure-twin synchronisation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_params(&mut self, w: Matrix<f64>, b: Vec<f64>) {
        assert_eq!(w.shape(), self.w.shape(), "filter shape mismatch");
        assert_eq!(b.len(), self.b.len(), "bias length mismatch");
        self.w = w;
        self.b = b;
    }

    fn input_tensor(&self, input: &Matrix<f64>) -> Tensor4 {
        Tensor4::from_flat(input, self.in_c, self.in_h, self.in_w)
    }

    /// Converts the `(n·oh·ow) × out_c` product-row layout into the
    /// `(batch, out_c·oh·ow)` layer-output layout.
    fn rows_to_output(&self, prod: &Matrix<f64>, n: usize) -> Matrix<f64> {
        let (oh, ow) = self.spec.output_size(self.in_h, self.in_w);
        let mut out = Matrix::zeros(n, self.out_c * oh * ow);
        let mut row = 0;
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let r = prod.row(row);
                    for (oc, &v) in r.iter().enumerate() {
                        out[(b, (oc * oh + oy) * ow + ox)] = v;
                    }
                    row += 1;
                }
            }
        }
        out
    }

    /// Converts a `(batch, out_c·oh·ow)` gradient into the
    /// `(n·oh·ow) × out_c` product-row layout.
    fn output_to_rows(&self, grad: &Matrix<f64>, n: usize) -> Matrix<f64> {
        let (oh, ow) = self.spec.output_size(self.in_h, self.in_w);
        let mut rows = Matrix::zeros(n * oh * ow, self.out_c);
        let mut row = 0;
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for oc in 0..self.out_c {
                        rows[(row, oc)] = grad[(b, (oc * oh + oy) * ow + ox)];
                    }
                    row += 1;
                }
            }
        }
        rows
    }
}

impl Layer for Conv2D {
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        assert_eq!(input.cols(), self.in_dim(), "conv input width mismatch");
        let n = input.rows();
        let tensor = self.input_tensor(input);
        let cols = im2col(&tensor, &self.spec);
        let mut prod = cols.matmul(&self.w.transpose());
        // Add bias per output channel.
        for r in 0..prod.rows() {
            for oc in 0..self.out_c {
                prod[(r, oc)] += self.b[oc];
            }
        }
        if train {
            self.cols = Some(cols);
        }
        self.rows_to_output(&prod, n)
    }

    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64> {
        let cols = self.cols.as_ref().expect("backward called before forward");
        let n = grad_out.rows();
        let grad_rows = self.output_to_rows(grad_out, n); // (n·oh·ow) × out_c

        self.grad_w = Some(grad_rows.transpose().matmul(cols));
        self.grad_b = Some(grad_rows.sum_rows().into_vec());

        let grad_cols = grad_rows.matmul(&self.w); // (n·oh·ow) × (c·kh·kw)
        let grad_input = col2im(&grad_cols, (n, self.in_c, self.in_h, self.in_w), &self.spec);
        grad_input.flatten()
    }

    fn update(&mut self, lr: f64) {
        if let (Some(gw), Some(gb)) = (&self.grad_w, &self.grad_b) {
            self.w = self.w.sub(&gw.scale(lr));
            for (b, g) in self.b.iter_mut().zip(gb) {
                *b -= lr * g;
            }
        }
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_matrix::conv2d_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_reference_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = ConvSpec::square(3, 1, 1);
        let mut layer = Conv2D::new((2, 5, 5), 3, spec, &mut rng);
        let input_t =
            Tensor4::from_vec(2, 2, 5, 5, (0..100).map(|v| (v % 7) as f64 - 3.0).collect());
        let out_flat = layer.forward(&input_t.flatten(), false);
        let reference = conv2d_naive(&input_t, &layer.w, &layer.b, &spec);
        assert!(
            Tensor4::from_flat(&out_flat, 3, 5, 5).approx_eq(&reference, 1e-9),
            "layer forward must equal reference convolution"
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = ConvSpec::square(2, 1, 0);
        let mut layer = Conv2D::new((1, 3, 3), 2, spec, &mut rng);
        let x = Matrix::from_fn(1, 9, |_, c| (c as f64) / 4.0 - 1.0);

        // Objective: sum of outputs.
        let y = layer.forward(&x, true);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let grad_in = layer.backward(&ones);
        let gw = layer.grad_w.clone().unwrap();
        let gb = layer.grad_b.clone().unwrap();

        let eps = 1e-6;
        let objective = |layer: &Conv2D, x: &Matrix<f64>| -> f64 {
            let t = Tensor4::from_flat(x, 1, 3, 3);
            conv2d_naive(&t, &layer.w, &layer.b, &spec).sum()
        };

        for (r, c) in [(0, 0), (1, 3), (0, 2)] {
            let mut lp = layer.clone();
            lp.w[(r, c)] += eps;
            let mut lm = layer.clone();
            lm.w[(r, c)] -= eps;
            let numeric = (objective(&lp, &x) - objective(&lm, &x)) / (2.0 * eps);
            assert!((numeric - gw[(r, c)]).abs() < 1e-5, "dW[{r},{c}]");
        }
        #[allow(clippy::needless_range_loop)]
        for oc in 0..2 {
            let mut lp = layer.clone();
            lp.b[oc] += eps;
            let mut lm = layer.clone();
            lm.b[oc] -= eps;
            let numeric = (objective(&lp, &x) - objective(&lm, &x)) / (2.0 * eps);
            assert!((numeric - gb[oc]).abs() < 1e-5, "db[{oc}]");
        }
        for i in [0usize, 4, 8] {
            let mut xp = x.clone();
            xp[(0, i)] += eps;
            let mut xm = x.clone();
            xm[(0, i)] -= eps;
            let numeric = (objective(&layer, &xp) - objective(&layer, &xm)) / (2.0 * eps);
            assert!((numeric - grad_in[(0, i)]).abs() < 1e-5, "dX[{i}]");
        }
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        // LeNet C1: 1×28×28, 6 filters 5×5 pad 2 → 6×28×28.
        let layer = Conv2D::new((1, 28, 28), 6, ConvSpec::square(5, 1, 2), &mut rng);
        assert_eq!(layer.out_shape(), (6, 28, 28));
        assert_eq!(layer.in_dim(), 784);
        assert_eq!(layer.out_dim(), 6 * 28 * 28);
        assert_eq!(layer.param_count(), 6 * 25 + 6);
    }
}
