//! Evaluation metrics.

use cryptonn_matrix::Matrix;

/// Classification accuracy: fraction of rows where the arg-max of
/// `output` matches the arg-max of the one-hot `target`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn accuracy(output: &Matrix<f64>, target_onehot: &Matrix<f64>) -> f64 {
    assert_eq!(
        output.shape(),
        target_onehot.shape(),
        "accuracy shape mismatch"
    );
    let pred = output.argmax_rows();
    let truth = target_onehot.argmax_rows();
    let correct = pred.iter().zip(&truth).filter(|(p, t)| p == t).count();
    correct as f64 / output.rows() as f64
}

/// Binary accuracy with a 0.5 threshold on a single output column.
///
/// # Panics
///
/// Panics if either matrix is not a single column or shapes mismatch.
pub fn binary_accuracy(output: &Matrix<f64>, target: &Matrix<f64>) -> f64 {
    assert_eq!(output.shape(), target.shape(), "accuracy shape mismatch");
    assert_eq!(
        output.cols(),
        1,
        "binary accuracy expects one output column"
    );
    let correct = output
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .filter(|(&p, &t)| (p >= 0.5) == (t >= 0.5))
        .count();
    correct as f64 / output.rows() as f64
}

/// One-hot encodes class labels into a `(len, classes)` matrix — the
/// label pre-processing the paper's Fig. 1 shows on the client before
/// encryption.
///
/// # Panics
///
/// Panics if any label is `>= classes` or `labels` is empty.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix<f64> {
    assert!(!labels.is_empty(), "labels must be non-empty");
    Matrix::from_fn(labels.len(), classes, |r, c| {
        assert!(labels[r] < classes, "label out of range");
        if labels[r] == c {
            1.0
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let out = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        let y = one_hot(&[0, 1, 1], 2);
        assert!((accuracy(&out, &y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binary_accuracy_thresholds() {
        let out = Matrix::from_rows(&[&[0.7], &[0.4], &[0.5]]);
        let y = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]);
        assert!((binary_accuracy(&out, &y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_hot_layout() {
        let y = one_hot(&[2, 0], 3);
        assert_eq!(y.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(y.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn one_hot_validates_range() {
        let _ = one_hot(&[3], 3);
    }
}
