//! The sequential network container and its training loop.

use cryptonn_matrix::Matrix;

use crate::layer::Layer;
use crate::loss::Loss;
use crate::metrics::accuracy;

/// A feed-forward stack of layers trained with SGD.
///
/// ```
/// use cryptonn_matrix::Matrix;
/// use cryptonn_nn::{Activation, ActivationLayer, Dense, Mse, Sequential};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 4, &mut rng));
/// net.push(ActivationLayer::new(Activation::Sigmoid));
/// net.push(Dense::new(4, 1, &mut rng));
/// net.push(ActivationLayer::new(Activation::Sigmoid));
///
/// // One SGD step on a single example.
/// let x = Matrix::from_rows(&[&[0.0, 1.0]]);
/// let y = Matrix::from_rows(&[&[1.0]]);
/// let loss = net.train_batch(&x, &y, &Mse, 0.5);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer (for dynamically built architectures).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to a layer by index.
    pub fn layer(&self, idx: usize) -> Option<&dyn Layer> {
        self.layers.get(idx).map(|b| b.as_ref())
    }

    /// Mutable access to a layer by index (used by CryptoNN to reach the
    /// secure first layer).
    pub fn layer_mut(&mut self, idx: usize) -> Option<&mut Box<dyn Layer>> {
        self.layers.get_mut(idx)
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs the full forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        assert!(!self.layers.is_empty(), "cannot run an empty network");
        let mut cur = self.layers[0].forward(input, train);
        for layer in &mut self.layers[1..] {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Runs the full backward pass from the loss gradient.
    pub fn backward(&mut self, grad_output: &Matrix<f64>) -> Matrix<f64> {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Applies one SGD step to every layer.
    pub fn update(&mut self, lr: f64) {
        for layer in &mut self.layers {
            layer.update(lr);
        }
    }

    /// Forward in inference mode.
    pub fn predict(&mut self, input: &Matrix<f64>) -> Matrix<f64> {
        self.forward(input, false)
    }

    /// One complete SGD step (forward → loss → backward → update) on a
    /// batch; returns the batch loss.
    pub fn train_batch(
        &mut self,
        x: &Matrix<f64>,
        y: &Matrix<f64>,
        loss: &dyn Loss,
        lr: f64,
    ) -> f64 {
        let out = self.forward(x, true);
        let loss_value = loss.forward(&out, y);
        let grad = loss.backward(&out, y);
        self.backward(&grad);
        self.update(lr);
        loss_value
    }

    /// Classification accuracy of the network on `(x, one-hot y)`.
    pub fn evaluate_accuracy(&mut self, x: &Matrix<f64>, y_onehot: &Matrix<f64>) -> f64 {
        let out = self.predict(x);
        accuracy(&out, y_onehot)
    }

    /// Layer names, for architecture summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, ActivationLayer};
    use crate::dense::Dense;
    use crate::loss::{Mse, SoftmaxCrossEntropy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// XOR: the canonical non-linearly-separable task; a 2-layer MLP must
    /// drive the loss near zero.
    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut rng));
        net.push(ActivationLayer::new(Activation::Tanh));
        net.push(Dense::new(8, 1, &mut rng));
        net.push(ActivationLayer::new(Activation::Sigmoid));

        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);

        let mut last = f64::INFINITY;
        for _ in 0..2000 {
            last = net.train_batch(&x, &y, &Mse, 1.0);
        }
        assert!(last < 0.01, "XOR loss should converge, got {last}");
        let pred = net.predict(&x);
        assert!(pred[(0, 0)] < 0.3 && pred[(3, 0)] < 0.3);
        assert!(pred[(1, 0)] > 0.7 && pred[(2, 0)] > 0.7);
    }

    #[test]
    fn learns_linear_classification_with_softmax() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 3, &mut rng));
        // Two Gaussian-ish blobs, classes 0 and 2.
        let x = Matrix::from_fn(20, 2, |r, c| {
            let base = if r < 10 { -2.0 } else { 2.0 };
            base + ((r * 3 + c * 7) % 5) as f64 * 0.1
        });
        let y = Matrix::from_fn(20, 3, |r, c| {
            if (r < 10 && c == 0) || (r >= 10 && c == 2) {
                1.0
            } else {
                0.0
            }
        });
        for _ in 0..200 {
            net.train_batch(&x, &y, &SoftmaxCrossEntropy, 0.5);
        }
        assert!(net.evaluate_accuracy(&x, &y) > 0.99);
    }

    #[test]
    fn loss_decreases_monotonically_on_average() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, &mut rng));
        net.push(ActivationLayer::new(Activation::Sigmoid));
        net.push(Dense::new(5, 2, &mut rng));
        let x = Matrix::from_fn(8, 3, |r, c| ((r + c) % 3) as f64 - 1.0);
        let y = Matrix::from_fn(8, 2, |r, _| if r % 2 == 0 { 1.0 } else { 0.0 });
        let first = net.train_batch(&x, &y, &Mse, 0.3);
        let mut last = first;
        for _ in 0..100 {
            last = net.train_batch(&x, &y, &Mse, 0.3);
        }
        assert!(last < first, "loss should decrease: {first} -> {last}");
    }

    #[test]
    fn structure_introspection() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        assert!(net.is_empty());
        net.push(Dense::new(2, 3, &mut rng));
        net.push(ActivationLayer::new(Activation::Relu));
        assert_eq!(net.len(), 2);
        assert_eq!(net.layer_names(), vec!["dense", "relu"]);
        assert_eq!(net.param_count(), 9);
        assert_eq!(net.layer(0).unwrap().name(), "dense");
        assert!(net.layer(5).is_none());
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let mut net = Sequential::new();
        let _ = net.forward(&Matrix::from_rows(&[&[1.0]]), false);
    }
}
