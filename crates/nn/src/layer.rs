//! The layer abstraction shared by the plaintext network and CryptoNN's
//! secure wrappers.

use core::fmt;

use cryptonn_matrix::Matrix;

/// One differentiable layer.
///
/// All inter-layer activations are `(batch, features)` matrices;
/// convolutional layers carry their spatial shape internally and reshape
/// at their boundaries (mirroring the paper's NumPy prototype).
pub trait Layer: fmt::Debug + Send {
    /// Computes the layer output. When `train` is true the layer caches
    /// whatever [`backward`](Layer::backward) will need.
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64>;

    /// Propagates the loss gradient, storing parameter gradients
    /// internally, and returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode `forward`.
    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64>;

    /// Applies one SGD step with learning rate `lr` to the stored
    /// gradients. Stateless layers keep the default no-op.
    fn update(&mut self, lr: f64) {
        let _ = lr;
    }

    /// A short human-readable layer name.
    fn name(&self) -> &'static str;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// The layer's parameters as a `(weights, bias)` pair, when the
    /// layer exposes them for checkpointing. Stateless layers (and
    /// layers whose parameters are not a plain dense pair) keep the
    /// default `None`; such layers cannot be captured into a training
    /// checkpoint.
    fn params(&self) -> Option<(&Matrix<f64>, &Matrix<f64>)> {
        None
    }

    /// Restores parameters previously read via
    /// [`params`](Layer::params). Returns `false` when the layer has no
    /// snapshot support (the default), letting callers surface a typed
    /// "unsupported model" error instead of silently resuming with
    /// stale weights.
    ///
    /// # Panics
    ///
    /// Implementations panic on shape mismatch with the existing
    /// parameters.
    fn set_params_from(&mut self, w: &Matrix<f64>, b: &Matrix<f64>) -> bool {
        let (_, _) = (w, b);
        false
    }
}
