//! Fully connected (dense) layers.

use cryptonn_matrix::Matrix;
use rand::Rng;

use crate::init::xavier_uniform;
use crate::layer::Layer;

/// A fully connected layer computing `Y = X·W + b` for
/// `X: (batch, in)`, `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix<f64>,
    b: Matrix<f64>,
    input: Option<Matrix<f64>>,
    grad_w: Option<Matrix<f64>>,
    grad_b: Option<Matrix<f64>>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights and zero
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "dense dimensions must be positive"
        );
        Self {
            w: xavier_uniform(in_dim, out_dim, in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
            input: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Creates a dense layer with explicit parameters (tests and the
    /// secure first layer, which must share weights with a plaintext
    /// twin).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 × w.cols()`.
    pub fn with_params(w: Matrix<f64>, b: Matrix<f64>) -> Self {
        assert_eq!(b.shape(), (1, w.cols()), "bias shape must be 1 x out_dim");
        Self {
            w,
            b,
            input: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix `W: (in, out)`.
    pub fn weights(&self) -> &Matrix<f64> {
        &self.w
    }

    /// The bias row `b: (1, out)`.
    pub fn bias(&self) -> &Matrix<f64> {
        &self.b
    }

    /// Overwrites the parameters (used by CryptoNN's secure layer to
    /// keep plaintext and encrypted twins in lock-step).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch with the existing parameters.
    pub fn set_params(&mut self, w: Matrix<f64>, b: Matrix<f64>) {
        assert_eq!(w.shape(), self.w.shape(), "weight shape mismatch");
        assert_eq!(b.shape(), self.b.shape(), "bias shape mismatch");
        self.w = w;
        self.b = b;
    }

    /// The last computed weight gradient, if a backward pass ran.
    pub fn grad_weights(&self) -> Option<&Matrix<f64>> {
        self.grad_w.as_ref()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        if train {
            self.input = Some(input.clone());
        }
        input.matmul(&self.w).add_row_broadcast(&self.b)
    }

    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64> {
        let input = self.input.as_ref().expect("backward called before forward");
        self.grad_w = Some(input.transpose().matmul(grad_out));
        self.grad_b = Some(grad_out.sum_rows());
        grad_out.matmul(&self.w.transpose())
    }

    fn update(&mut self, lr: f64) {
        if let (Some(gw), Some(gb)) = (&self.grad_w, &self.grad_b) {
            self.w = self.w.sub(&gw.scale(lr));
            self.b = self.b.sub(&gb.scale(lr));
        }
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn params(&self) -> Option<(&Matrix<f64>, &Matrix<f64>)> {
        Some((&self.w, &self.b))
    }

    fn set_params_from(&mut self, w: &Matrix<f64>, b: &Matrix<f64>) -> bool {
        self.set_params(w.clone(), b.clone());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -0.5]]);
        let mut layer = Dense::with_params(w, b);
        let x = Matrix::from_rows(&[&[3.0, 4.0]]);
        let y = layer.forward(&x, false);
        assert_eq!(y, Matrix::from_rows(&[&[3.5, 7.5]]));
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| (r as f64 - c as f64) / 3.0);
        // Scalar objective: sum of outputs. dL/dy = 1.
        let y = layer.forward(&x, true);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let grad_in = layer.backward(&ones);

        let eps = 1e-6;
        // Check dL/dW numerically.
        let gw = layer.grad_w.clone().unwrap();
        for (r, c) in [(0, 0), (1, 2), (3, 1)] {
            let mut wp = layer.w.clone();
            wp[(r, c)] += eps;
            let lp = x.matmul(&wp).add_row_broadcast(&layer.b).sum();
            let mut wm = layer.w.clone();
            wm[(r, c)] -= eps;
            let lm = x.matmul(&wm).add_row_broadcast(&layer.b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gw[(r, c)]).abs() < 1e-5, "dW[{r},{c}]");
        }
        // Check dL/dX numerically.
        for (r, c) in [(0, 0), (1, 3)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let lp = xp.matmul(&layer.w).add_row_broadcast(&layer.b).sum();
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let lm = xm.matmul(&layer.w).add_row_broadcast(&layer.b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad_in[(r, c)]).abs() < 1e-5, "dX[{r},{c}]");
        }
    }

    #[test]
    fn update_moves_against_gradient() {
        let w = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::from_rows(&[&[0.0]]);
        let mut layer = Dense::with_params(w, b);
        let x = Matrix::from_rows(&[&[2.0]]);
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&Matrix::from_rows(&[&[1.0]]));
        layer.update(0.1);
        // grad_w = xᵀ·1 = 2, so w ← 1 - 0.1·2 = 0.8.
        assert!((layer.w[(0, 0)] - 0.8).abs() < 1e-12);
        // grad_b = 1, so b ← -0.1.
        assert!((layer.b[(0, 0)] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Dense::new(10, 5, &mut rng);
        assert_eq!(layer.param_count(), 55);
    }
}
