//! # cryptonn-nn
//!
//! A from-scratch plaintext neural-network framework — the NumPy model
//! stack of the CryptoNN paper, and the baseline ("original LeNet-5")
//! arm of its evaluation.
//!
//! - Layers: [`Dense`], [`Conv2D`], [`AvgPool2D`], [`MaxPool2D`],
//!   [`ActivationLayer`] (sigmoid / ReLU / tanh).
//! - Losses: [`SoftmaxCrossEntropy`] (§III-E2) and [`Mse`] (§III-D).
//! - [`Sequential`] container with SGD training.
//! - Presets: [`lenet5`] (the paper's CryptoCNN backbone), [`lenet_small`]
//!   (CI-sized twin), [`binary_mlp`] (§III-D's classifier).
//!
//! CryptoNN (`cryptonn-core`) reuses every piece of this crate and swaps
//! the first-layer and output-layer computations for their secure
//! counterparts.
//!
//! ## Example
//!
//! ```
//! use cryptonn_matrix::Matrix;
//! use cryptonn_nn::{binary_mlp, Mse};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = binary_mlp(2, &[4], &mut rng);
//! let x = Matrix::from_rows(&[&[0.2, 0.9]]);
//! let y = Matrix::from_rows(&[&[1.0]]);
//! for _ in 0..10 {
//!     net.train_batch(&x, &y, &Mse, 1.0);
//! }
//! assert!(net.predict(&x)[(0, 0)] > 0.5);
//! ```

mod activation;
mod conv_layer;
mod dense;
pub mod init;
mod layer;
mod lenet;
mod loss;
pub mod metrics;
mod network;
mod pool;

pub use activation::{Activation, ActivationLayer};
pub use conv_layer::Conv2D;
pub use dense::Dense;
pub use layer::Layer;
pub use lenet::{binary_mlp, lenet5, lenet_small};
pub use loss::{softmax, Loss, Mse, SoftmaxCrossEntropy};
pub use metrics::{accuracy, binary_accuracy, one_hot};
pub use network::Sequential;
pub use pool::{AvgPool2D, MaxPool2D};
