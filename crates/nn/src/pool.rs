//! Pooling layers. LeNet-5 (the paper's CryptoCNN backbone) uses average
//! pooling for its S2 and S4 layers; max pooling is provided for
//! completeness (§II-C lists both).

use cryptonn_matrix::{Matrix, Tensor4};

use crate::layer::Layer;

/// Average pooling over non-overlapping `k × k` windows with stride `k`.
#[derive(Debug, Clone)]
pub struct AvgPool2D {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    batch: Option<usize>,
}

impl AvgPool2D {
    /// Creates an average-pooling layer for `(c, h, w)` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or does not divide both spatial dimensions
    /// (LeNet's pooling windows tile the plane exactly).
    pub fn new(in_shape: (usize, usize, usize), k: usize) -> Self {
        let (c, h, w) = in_shape;
        assert!(k > 0, "pool size must be positive");
        assert!(
            h % k == 0 && w % k == 0,
            "pool size must divide the spatial dims"
        );
        Self {
            c,
            h,
            w,
            k,
            batch: None,
        }
    }

    /// Output shape `(c, h/k, w/k)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.c, self.h / self.k, self.w / self.k)
    }

    /// Flattened output width.
    pub fn out_dim(&self) -> usize {
        let (c, h, w) = self.out_shape();
        c * h * w
    }
}

impl Layer for AvgPool2D {
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        assert_eq!(
            input.cols(),
            self.c * self.h * self.w,
            "pool input width mismatch"
        );
        let n = input.rows();
        if train {
            self.batch = Some(n);
        }
        let t = Tensor4::from_flat(input, self.c, self.h, self.w);
        let (oh, ow) = (self.h / self.k, self.w / self.k);
        let mut out = Tensor4::zeros(n, self.c, oh, ow);
        let norm = 1.0 / (self.k * self.k) as f64;
        for b in 0..n {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                acc += t[(b, c, oy * self.k + ky, ox * self.k + kx)];
                            }
                        }
                        out[(b, c, oy, ox)] = acc * norm;
                    }
                }
            }
        }
        out.flatten()
    }

    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64> {
        let n = self.batch.expect("backward called before forward");
        let (oh, ow) = (self.h / self.k, self.w / self.k);
        let g = Tensor4::from_flat(grad_out, self.c, oh, ow);
        let mut out = Tensor4::zeros(n, self.c, self.h, self.w);
        let norm = 1.0 / (self.k * self.k) as f64;
        for b in 0..n {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let v = g[(b, c, oy, ox)] * norm;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                out[(b, c, oy * self.k + ky, ox * self.k + kx)] = v;
                            }
                        }
                    }
                }
            }
        }
        out.flatten()
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Max pooling over non-overlapping `k × k` windows with stride `k`.
#[derive(Debug, Clone)]
pub struct MaxPool2D {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    /// Argmax linear offsets (into the flattened input) per output cell.
    argmax: Option<Vec<usize>>,
    batch: Option<usize>,
}

impl MaxPool2D {
    /// Creates a max-pooling layer for `(c, h, w)` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or does not divide both spatial dimensions.
    pub fn new(in_shape: (usize, usize, usize), k: usize) -> Self {
        let (c, h, w) = in_shape;
        assert!(k > 0, "pool size must be positive");
        assert!(
            h % k == 0 && w % k == 0,
            "pool size must divide the spatial dims"
        );
        Self {
            c,
            h,
            w,
            k,
            argmax: None,
            batch: None,
        }
    }

    /// Output shape `(c, h/k, w/k)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        (self.c, self.h / self.k, self.w / self.k)
    }
}

impl Layer for MaxPool2D {
    fn forward(&mut self, input: &Matrix<f64>, train: bool) -> Matrix<f64> {
        assert_eq!(
            input.cols(),
            self.c * self.h * self.w,
            "pool input width mismatch"
        );
        let n = input.rows();
        let t = Tensor4::from_flat(input, self.c, self.h, self.w);
        let (oh, ow) = (self.h / self.k, self.w / self.k);
        let mut out = Tensor4::zeros(n, self.c, oh, ow);
        let mut argmax = vec![0usize; n * self.c * oh * ow];
        let mut idx = 0;
        for b in 0..n {
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_off = 0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let y = oy * self.k + ky;
                                let x = ox * self.k + kx;
                                let v = t[(b, c, y, x)];
                                if v > best {
                                    best = v;
                                    best_off = b * self.c * self.h * self.w
                                        + c * self.h * self.w
                                        + y * self.w
                                        + x;
                                }
                            }
                        }
                        out[(b, c, oy, ox)] = best;
                        argmax[idx] = best_off;
                        idx += 1;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.batch = Some(n);
        }
        out.flatten()
    }

    fn backward(&mut self, grad_out: &Matrix<f64>) -> Matrix<f64> {
        let argmax = self
            .argmax
            .as_ref()
            .expect("backward called before forward");
        let n = self.batch.expect("backward called before forward");
        let mut out = Matrix::zeros(n, self.c * self.h * self.w);
        let plane = self.c * self.h * self.w;
        for (i, &off) in argmax.iter().enumerate() {
            let b = off / plane;
            out[(b, off % plane)] += grad_out.as_slice()[i];
        }
        out
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_forward() {
        let mut pool = AvgPool2D::new((1, 4, 4), 2);
        let t = Tensor4::from_vec(1, 1, 4, 4, (1..=16).map(f64::from).collect());
        let out = pool.forward(&t.flatten(), false);
        // Window means: (1+2+5+6)/4=3.5, (3+4+7+8)/4=5.5, ...
        assert_eq!(out.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
        assert_eq!(pool.out_shape(), (1, 2, 2));
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let mut pool = AvgPool2D::new((1, 2, 2), 2);
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let _ = pool.forward(&t.flatten(), true);
        let grad = pool.backward(&Matrix::from_rows(&[&[8.0]]));
        assert_eq!(grad.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_gradient_check() {
        let mut pool = AvgPool2D::new((2, 4, 4), 2);
        let x = Matrix::from_fn(2, 32, |r, c| ((r * 31 + c * 7) % 11) as f64 - 5.0);
        let y = pool.forward(&x, true);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let g = pool.backward(&ones);
        // Objective = sum(out). d/dx = 1/k² for every input element.
        assert!(g.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let mut pool = MaxPool2D::new((1, 2, 2), 2);
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 9.0, 3.0, 4.0]);
        let out = pool.forward(&t.flatten(), true);
        assert_eq!(out.as_slice(), &[9.0]);
        let grad = pool.backward(&Matrix::from_rows(&[&[5.0]]));
        assert_eq!(grad.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_batch_routing() {
        let mut pool = MaxPool2D::new((1, 2, 2), 2);
        // Two samples with maxima in different corners.
        let x = Matrix::from_rows(&[&[7.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0, 7.0]]);
        let _ = pool.forward(&x, true);
        let grad = pool.backward(&Matrix::from_rows(&[&[1.0], &[2.0]]));
        assert_eq!(grad.row(0), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn pool_size_must_divide() {
        let _ = AvgPool2D::new((1, 5, 5), 2);
    }
}
