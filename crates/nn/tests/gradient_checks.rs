//! Systematic numerical gradient verification: every layer's analytic
//! backward pass is checked against central finite differences through
//! randomized network configurations.

use cryptonn_matrix::ConvSpec;
use cryptonn_matrix::Matrix;
use cryptonn_nn::{
    Activation, ActivationLayer, AvgPool2D, Conv2D, Dense, Layer, Loss, MaxPool2D, Mse, Sequential,
    SoftmaxCrossEntropy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small randomized network, runs one forward/backward, and
/// verifies dL/dX against finite differences of the whole network.
fn check_network_input_grad(
    net: &mut Sequential,
    x: &Matrix<f64>,
    y: &Matrix<f64>,
    loss: &dyn Loss,
) {
    let out = net.forward(x, true);
    let grad = loss.backward(&out, y);
    let grad_in = net.backward(&grad);

    let eps = 1e-5;
    // Spot-check a handful of coordinates.
    let coords: Vec<(usize, usize)> = (0..x.rows())
        .flat_map(|r| [(r, 0), (r, x.cols() / 2), (r, x.cols() - 1)])
        .collect();
    for (r, c) in coords {
        let mut xp = x.clone();
        xp[(r, c)] += eps;
        let mut xm = x.clone();
        xm[(r, c)] -= eps;
        let lp = loss.forward(&net.forward(&xp, false), y);
        let lm = loss.forward(&net.forward(&xm, false), y);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grad_in[(r, c)];
        assert!(
            (numeric - analytic).abs() < 1e-4,
            "dX[{r},{c}]: numeric {numeric} vs analytic {analytic}"
        );
    }
}

#[test]
fn mlp_with_every_activation() {
    for act in [Activation::Sigmoid, Activation::Tanh] {
        let mut rng = StdRng::seed_from_u64(61);
        let mut net = Sequential::new();
        net.push(Dense::new(6, 5, &mut rng));
        net.push(ActivationLayer::new(act));
        net.push(Dense::new(5, 3, &mut rng));
        let x = Matrix::from_fn(4, 6, |r, c| ((r * 7 + c * 3) % 11) as f64 / 11.0 - 0.5);
        let y = Matrix::from_fn(4, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        check_network_input_grad(&mut net, &x, &y, &SoftmaxCrossEntropy);
    }
}

#[test]
fn conv_pool_dense_stack() {
    let mut rng = StdRng::seed_from_u64(62);
    let mut net = Sequential::new();
    net.push(Conv2D::new(
        (1, 6, 6),
        2,
        ConvSpec::square(3, 1, 1),
        &mut rng,
    ));
    net.push(ActivationLayer::new(Activation::Tanh));
    net.push(AvgPool2D::new((2, 6, 6), 2));
    net.push(Dense::new(2 * 3 * 3, 2, &mut rng));
    let x = Matrix::from_fn(3, 36, |r, c| ((r * 13 + c * 5) % 9) as f64 / 9.0 - 0.4);
    let y = Matrix::from_fn(3, 2, |r, c| if r % 2 == c { 1.0 } else { 0.0 });
    check_network_input_grad(&mut net, &x, &y, &SoftmaxCrossEntropy);
}

#[test]
fn mse_head() {
    let mut rng = StdRng::seed_from_u64(63);
    let mut net = Sequential::new();
    net.push(Dense::new(4, 6, &mut rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    net.push(Dense::new(6, 1, &mut rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    let x = Matrix::from_fn(5, 4, |r, c| (r as f64 - c as f64) / 4.0);
    let y = Matrix::from_fn(5, 1, |r, _| (r % 2) as f64);
    check_network_input_grad(&mut net, &x, &y, &Mse);
}

#[test]
fn max_pool_network() {
    // MaxPool gradients are only piecewise-smooth; keep inputs away from
    // argmax ties by construction.
    let mut rng = StdRng::seed_from_u64(64);
    let mut net = Sequential::new();
    net.push(MaxPool2D::new((1, 4, 4), 2));
    net.push(Dense::new(4, 2, &mut rng));
    let x = Matrix::from_fn(2, 16, |r, c| (c as f64) + (r as f64) * 0.3);
    let y = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
    check_network_input_grad(&mut net, &x, &y, &SoftmaxCrossEntropy);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random dense nets: parameter gradients must match finite
    /// differences of the loss with respect to each weight.
    #[test]
    fn dense_weight_gradients(seed in 0u64..1000, hidden in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut first = Dense::new(3, hidden, &mut rng);
        let x = Matrix::from_fn(2, 3, |r, c| ((seed as usize + r * 3 + c) % 7) as f64 / 7.0);
        let target = Matrix::from_fn(2, hidden, |r, c| ((r + c) % 2) as f64);

        let out = first.forward(&x, true);
        let grad_out = Mse.backward(&out, &target);
        let _ = first.backward(&grad_out);
        let gw = first.grad_weights().unwrap().clone();

        let eps = 1e-6;
        let w0 = first.weights().clone();
        let b0 = first.bias().clone();
        for (r, c) in [(0, 0), (2, hidden - 1)] {
            let mut wp = w0.clone();
            wp[(r, c)] += eps;
            let mut layer_p = Dense::with_params(wp, b0.clone());
            let lp = Mse.forward(&layer_p.forward(&x, false), &target);
            let mut wm = w0.clone();
            wm[(r, c)] -= eps;
            let mut layer_m = Dense::with_params(wm, b0.clone());
            let lm = Mse.forward(&layer_m.forward(&x, false), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!((numeric - gw[(r, c)]).abs() < 1e-4);
        }
    }
}
