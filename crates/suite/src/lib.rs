//! # cryptonn-suite
//!
//! Carrier crate for the repository-level `examples/` and `tests/`
//! targets (Cargo requires example and integration-test files to belong
//! to a package; this package exists solely to host them at the
//! repository root, spanning every other crate in the workspace).
//!
//! Run the examples with, e.g.:
//!
//! ```sh
//! cargo run --release -p cryptonn-suite --example quickstart
//! ```
