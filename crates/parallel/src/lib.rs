//! # cryptonn-parallel
//!
//! Minimal fork-join parallelism shared by the encryption and
//! decryption loops.
//!
//! The paper notes that Algorithm 1's decryption loops (lines 8 and 12)
//! are embarrassingly parallel and reports order-of-magnitude speedups
//! from parallelizing them (Figs. 3d, 4d, 5d). The same fan-out applies
//! to the client-side batch encryption added with the Montgomery
//! refactor (DESIGN.md §8). This crate provides the scoped-thread
//! [`parallel_map`] and the [`Parallelism`] policy used by both; it
//! lives below `cryptonn-fe` so the FE layer can batch-encrypt without
//! a dependency cycle through `cryptonn-smc`.

/// Computes `f(0), f(1), …, f(n-1)` across `threads` OS threads,
/// preserving index order in the returned vector.
///
/// `threads <= 1` runs inline with zero overhead. Results are collected
/// per-chunk so no locking is involved.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A thread-count policy for the secure computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Single-threaded decryption — the paper's baseline arms in
    /// Figs. 3c/4c/5c.
    #[default]
    Serial,
    /// Decryption fanned out over the given number of threads — the
    /// "(P)" arms in Figs. 3d/4d/5d.
    Threads(usize),
}

impl Parallelism {
    /// The effective worker count (1 for serial).
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
        }
    }

    /// One thread per available CPU.
    pub fn available() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _ = parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(4).thread_count(), 4);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert!(Parallelism::available().thread_count() >= 1);
    }
}
