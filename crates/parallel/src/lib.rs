//! # cryptonn-parallel
//!
//! Minimal fork-join parallelism shared by the encryption and
//! decryption loops.
//!
//! The paper notes that Algorithm 1's decryption loops (lines 8 and 12)
//! are embarrassingly parallel and reports order-of-magnitude speedups
//! from parallelizing them (Figs. 3d, 4d, 5d). The same fan-out applies
//! to the client-side batch encryption added with the Montgomery
//! refactor (DESIGN.md §8). This crate provides the scoped-thread
//! [`parallel_map`] and the [`Parallelism`] policy used by both; it
//! lives below `cryptonn-fe` so the FE layer can batch-encrypt without
//! a dependency cycle through `cryptonn-smc`.

/// Computes `f(0), f(1), …, f(n-1)` across `threads` OS threads,
/// preserving index order in the returned vector.
///
/// `threads <= 1` runs inline with zero overhead. Results are collected
/// per-chunk so no locking is involved.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A bounded pool of worker threads for long-running jobs — the
/// session server's thread-per-connection model without unbounded
/// thread growth.
///
/// Capacity is tracked as *slots*: a submission reserves a slot before
/// the job is queued, and a worker frees it only when the job
/// finishes, so at most `capacity` jobs exist in the pool at any
/// moment — queued or running. [`execute`](Self::execute) *blocks*
/// while every slot is taken (saturation backpressures the submitter;
/// an accept loop stops accepting), while
/// [`try_execute`](Self::try_execute) refuses instead of waiting.
#[derive(Debug)]
struct PoolSlots {
    idle: std::sync::Mutex<usize>,
    freed: std::sync::Condvar,
}

/// A bounded pool: capacity is tracked by an internal idle-slot
/// counter; [`execute`](Self::execute) waits for a slot while
/// [`try_execute`](Self::try_execute) refuses instead.
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<std::sync::mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    slots: std::sync::Arc<PoolSlots>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let slots = std::sync::Arc::new(PoolSlots {
            idle: std::sync::Mutex::new(threads),
            freed: std::sync::Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let slots = std::sync::Arc::clone(&slots);
                std::thread::spawn(move || loop {
                    // The receiver mutex is held only for the blocking
                    // recv; the job itself runs unlocked.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return, // a job panicked mid-recv elsewhere
                    };
                    match job {
                        Ok(job) => {
                            // A panicking job must neither kill the
                            // worker nor leak its capacity slot —
                            // otherwise `capacity` hostile jobs would
                            // wedge the pool shut permanently. The
                            // panic is contained to the job.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if let Ok(mut idle) = slots.idle.lock() {
                                *idle += 1;
                            }
                            slots.freed.notify_one();
                        }
                        Err(_) => return, // pool dropped, queue drained
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            slots,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn capacity(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Box<dyn FnOnce() + Send>) {
        self.tx
            .as_ref()
            .expect("pool is live until dropped")
            .send(job)
            .expect("workers outlive the pool handle");
    }

    /// Runs `job` on a worker, blocking until a slot frees.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut idle = self.slots.idle.lock().expect("pool lock poisoned");
            while *idle == 0 {
                idle = self.slots.freed.wait(idle).expect("pool lock poisoned");
            }
            *idle -= 1;
        }
        self.submit(Box::new(job));
    }

    /// Runs `job` if a slot is free, or returns `false` without running
    /// it when the pool is saturated — the reject-when-saturated arm
    /// for callers that must not block.
    #[must_use]
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        {
            let mut idle = self.slots.idle.lock().expect("pool lock poisoned");
            if *idle == 0 {
                return false;
            }
            *idle -= 1;
        }
        self.submit(Box::new(job));
        true
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers exit once the queue drains, then
        // wait for the busy ones to finish their current job.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A thread-count policy for the secure computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Single-threaded decryption — the paper's baseline arms in
    /// Figs. 3c/4c/5c.
    #[default]
    Serial,
    /// Decryption fanned out over the given number of threads — the
    /// "(P)" arms in Figs. 3d/4d/5d.
    Threads(usize),
}

impl Parallelism {
    /// The effective worker count (1 for serial).
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
        }
    }

    /// One thread per available CPU.
    pub fn available() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _ = parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn pool_runs_jobs_and_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = ThreadPool::new(2);
        assert_eq!(pool.capacity(), 2);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn saturated_pool_refuses_try_execute() {
        use std::sync::mpsc;
        let pool = ThreadPool::new(1);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
        });
        started_rx.recv().unwrap(); // the only worker is now busy
        assert!(!pool.try_execute(|| {}));
        hold_tx.send(()).unwrap(); // release the worker
                                   // Eventually accepts again (the worker must cycle back to recv).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if pool.try_execute(|| {}) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pool never freed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(4).thread_count(), 4);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert!(Parallelism::available().thread_count() >= 1);
    }
}
