//! # cryptonn-parallel
//!
//! Minimal fork-join parallelism shared by the encryption and
//! decryption loops.
//!
//! The paper notes that Algorithm 1's decryption loops (lines 8 and 12)
//! are embarrassingly parallel and reports order-of-magnitude speedups
//! from parallelizing them (Figs. 3d, 4d, 5d). The same fan-out applies
//! to the client-side batch encryption added with the Montgomery
//! refactor (DESIGN.md §8). This crate provides the scoped-thread
//! [`parallel_map`] and the [`Parallelism`] policy used by both; it
//! lives below `cryptonn-fe` so the FE layer can batch-encrypt without
//! a dependency cycle through `cryptonn-smc`.
//!
//! For the long-lived daemon threads of `cryptonn-net` it also provides
//! the bounded [`ThreadPool`] (connection handlers) and the joinable,
//! panic-containing [`WorkerSet`] (per-session workers with optional
//! restart-on-panic).

/// Computes `f(0), f(1), …, f(n-1)` across `threads` OS threads,
/// preserving index order in the returned vector.
///
/// `threads <= 1` runs inline with zero overhead. Results are collected
/// per-chunk so no locking is involved.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A bounded pool of worker threads for long-running jobs — the
/// session server's thread-per-connection model without unbounded
/// thread growth.
///
/// Capacity is tracked as *slots*: a submission reserves a slot before
/// the job is queued, and a worker frees it only when the job
/// finishes, so at most `capacity` jobs exist in the pool at any
/// moment — queued or running. [`execute`](Self::execute) *blocks*
/// while every slot is taken (saturation backpressures the submitter;
/// an accept loop stops accepting), while
/// [`try_execute`](Self::try_execute) refuses instead of waiting.
#[derive(Debug)]
struct PoolSlots {
    idle: std::sync::Mutex<usize>,
    freed: std::sync::Condvar,
}

/// A bounded pool: capacity is tracked by an internal idle-slot
/// counter; [`execute`](Self::execute) waits for a slot while
/// [`try_execute`](Self::try_execute) refuses instead.
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<std::sync::mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    slots: std::sync::Arc<PoolSlots>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let slots = std::sync::Arc::new(PoolSlots {
            idle: std::sync::Mutex::new(threads),
            freed: std::sync::Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let slots = std::sync::Arc::clone(&slots);
                std::thread::spawn(move || loop {
                    // The receiver mutex is held only for the blocking
                    // recv; the job itself runs unlocked.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return, // a job panicked mid-recv elsewhere
                    };
                    match job {
                        Ok(job) => {
                            // A panicking job must neither kill the
                            // worker nor leak its capacity slot —
                            // otherwise `capacity` hostile jobs would
                            // wedge the pool shut permanently. The
                            // panic is contained to the job.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if let Ok(mut idle) = slots.idle.lock() {
                                *idle += 1;
                            }
                            slots.freed.notify_one();
                        }
                        Err(_) => return, // pool dropped, queue drained
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            slots,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn capacity(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Box<dyn FnOnce() + Send>) {
        self.tx
            .as_ref()
            .expect("pool is live until dropped")
            .send(job)
            .expect("workers outlive the pool handle");
    }

    /// Runs `job` on a worker, blocking until a slot frees.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut idle = self.slots.idle.lock().expect("pool lock poisoned");
            while *idle == 0 {
                idle = self.slots.freed.wait(idle).expect("pool lock poisoned");
            }
            *idle -= 1;
        }
        self.submit(Box::new(job));
    }

    /// Runs `job` if a slot is free, or returns `false` without running
    /// it when the pool is saturated — the reject-when-saturated arm
    /// for callers that must not block.
    #[must_use]
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        {
            let mut idle = self.slots.idle.lock().expect("pool lock poisoned");
            if *idle == 0 {
                return false;
            }
            *idle -= 1;
        }
        self.submit(Box::new(job));
        true
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers exit once the queue drains, then
        // wait for the busy ones to finish their current job.
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A named registry of long-lived worker threads that the owner can
/// join deterministically — the session daemon's per-session workers,
/// which must be *waited for* on shutdown rather than detached (a
/// detached worker could still be appending to a durability ledger
/// while the process tears the directory down).
///
/// Two spawn modes:
///
/// - [`spawn`](Self::spawn) runs a one-shot job;
/// - [`spawn_restartable`](Self::spawn_restartable) contains panics
///   with `catch_unwind` and re-runs the job up to an attempt budget —
///   crash-resume *inside* one process, the in-memory twin of the
///   daemon's restart-from-ledger path.
///
/// [`join_all`](Self::join_all) blocks until every spawned worker has
/// exited and reports the names of those whose final attempt panicked.
#[derive(Debug, Default)]
pub struct WorkerSet {
    workers: std::sync::Mutex<Vec<(String, std::thread::JoinHandle<bool>)>>,
}

impl WorkerSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers spawned so far and not yet joined.
    pub fn len(&self) -> usize {
        self.workers.lock().expect("worker registry poisoned").len()
    }

    /// True when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, name: &str, handle: std::thread::JoinHandle<bool>) {
        self.workers
            .lock()
            .expect("worker registry poisoned")
            .push((name.to_string(), handle));
    }

    /// Spawns a one-shot named worker.
    pub fn spawn(&self, name: &str, job: impl FnOnce() + Send + 'static) {
        let handle = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_ok()
        });
        self.register(name, handle);
    }

    /// Spawns a named worker that re-runs `job` after a panic, up to
    /// `attempts` runs in total (clamped to at least one). The worker
    /// exits after the first clean run.
    pub fn spawn_restartable(&self, name: &str, attempts: u32, job: impl Fn() + Send + 'static) {
        let handle = std::thread::spawn(move || {
            for _ in 0..attempts.max(1) {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(&job)).is_ok() {
                    return true;
                }
            }
            false
        });
        self.register(name, handle);
    }

    /// Waits for every registered worker to exit; returns the names of
    /// workers whose final attempt panicked (empty on a clean drain).
    pub fn join_all(&self) -> Vec<String> {
        let drained: Vec<_> = {
            let mut workers = self.workers.lock().expect("worker registry poisoned");
            workers.drain(..).collect()
        };
        let mut panicked = Vec::new();
        for (name, handle) in drained {
            if !handle.join().unwrap_or(false) {
                panicked.push(name);
            }
        }
        panicked
    }
}

/// A thread-count policy for the secure computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Single-threaded decryption — the paper's baseline arms in
    /// Figs. 3c/4c/5c.
    #[default]
    Serial,
    /// Decryption fanned out over the given number of threads — the
    /// "(P)" arms in Figs. 3d/4d/5d.
    Threads(usize),
}

impl Parallelism {
    /// The effective worker count (1 for serial).
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
        }
    }

    /// One thread per available CPU.
    pub fn available() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _ = parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn pool_runs_jobs_and_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = ThreadPool::new(2);
        assert_eq!(pool.capacity(), 2);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn saturated_pool_refuses_try_execute() {
        use std::sync::mpsc;
        let pool = ThreadPool::new(1);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
        });
        started_rx.recv().unwrap(); // the only worker is now busy
        assert!(!pool.try_execute(|| {}));
        hold_tx.send(()).unwrap(); // release the worker
                                   // Eventually accepts again (the worker must cycle back to recv).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if pool.try_execute(|| {}) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "pool never freed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn worker_set_joins_and_reports_clean_exits() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let set = WorkerSet::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for i in 0..3 {
            let ran = Arc::clone(&ran);
            set.spawn(&format!("worker-{i}"), move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(set.len(), 3);
        assert!(set.join_all().is_empty());
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert!(set.is_empty());
    }

    #[test]
    fn restartable_worker_survives_panics_within_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let set = WorkerSet::new();
        let runs = Arc::new(AtomicUsize::new(0));
        {
            let runs = Arc::clone(&runs);
            set.spawn_restartable("flaky", 3, move || {
                // Panic on the first two runs, succeed on the third.
                if runs.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("injected crash");
                }
            });
        }
        assert!(set.join_all().is_empty(), "third attempt should succeed");
        assert_eq!(runs.load(Ordering::SeqCst), 3);

        // Exhausting the budget reports the worker by name.
        let runs2 = Arc::new(AtomicUsize::new(0));
        {
            let runs2 = Arc::clone(&runs2);
            set.spawn_restartable("doomed", 2, move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                panic!("always crashes");
            });
        }
        assert_eq!(set.join_all(), vec!["doomed".to_string()]);
        assert_eq!(runs2.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(4).thread_count(), 4);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert!(Parallelism::available().thread_count() >= 1);
    }
}
