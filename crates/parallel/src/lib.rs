//! # cryptonn-parallel
//!
//! Minimal fork-join parallelism shared by the encryption and
//! decryption loops.
//!
//! The paper notes that Algorithm 1's decryption loops (lines 8 and 12)
//! are embarrassingly parallel and reports order-of-magnitude speedups
//! from parallelizing them (Figs. 3d, 4d, 5d). The same fan-out applies
//! to the client-side batch encryption added with the Montgomery
//! refactor (DESIGN.md §8). This crate provides the scoped-thread
//! [`parallel_map`] and the [`Parallelism`] policy used by both; it
//! lives below `cryptonn-fe` so the FE layer can batch-encrypt without
//! a dependency cycle through `cryptonn-smc`.

/// Computes `f(0), f(1), …, f(n-1)` across `threads` OS threads,
/// preserving index order in the returned vector.
///
/// `threads <= 1` runs inline with zero overhead. Results are collected
/// per-chunk so no locking is involved.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `produce(0..n)` on a dedicated producer thread while
/// `consume(i, item)` runs on the calling thread, overlapping the two —
/// the session layer's encrypt/train pipeline, where clients encrypt
/// batch `t+1` while the server trains on batch `t`.
///
/// The producer runs strictly in index order on one thread, so any
/// state it mutates (client RNGs) evolves exactly as in the serial
/// schedule: outputs are bit-identical with pipelining on or off. The
/// channel holds at most one finished item, bounding the pipeline at
/// double-buffering depth.
///
/// `pipelined = false` degrades to the serial produce-then-consume loop
/// with zero threading overhead (the baseline arm of the pipelining
/// ablation).
///
/// # Panics
///
/// Propagates panics from `produce` (after the consumer drains the
/// items produced before the panic) and from `consume`.
pub fn double_buffered<T, P, C>(n: usize, pipelined: bool, mut produce: P, mut consume: C)
where
    T: Send,
    P: FnMut(usize) -> T + Send,
    C: FnMut(usize, T),
{
    if !pipelined || n <= 1 {
        for i in 0..n {
            let item = produce(i);
            consume(i, item);
        }
        return;
    }
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::sync_channel::<T>(1);
        let producer = scope.spawn(move || {
            for i in 0..n {
                // The consumer hanging up (on its own panic) is not an
                // error worth a second panic here.
                if tx.send(produce(i)).is_err() {
                    break;
                }
            }
        });
        for i in 0..n {
            match rx.recv() {
                Ok(item) => consume(i, item),
                Err(_) => break, // producer panicked; join propagates it
            }
        }
        if let Err(payload) = producer.join() {
            // Re-raise with the original payload so the caller sees the
            // producer's own panic message, not a generic join error.
            std::panic::resume_unwind(payload);
        }
    });
}

/// A thread-count policy for the secure computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Single-threaded decryption — the paper's baseline arms in
    /// Figs. 3c/4c/5c.
    #[default]
    Serial,
    /// Decryption fanned out over the given number of threads — the
    /// "(P)" arms in Figs. 3d/4d/5d.
    Threads(usize),
}

impl Parallelism {
    /// The effective worker count (1 for serial).
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (*n).max(1),
        }
    }

    /// One thread per available CPU.
    pub fn available() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _ = parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn double_buffered_matches_serial() {
        for pipelined in [false, true] {
            let mut state = 7u64; // producer-side mutable state
            let mut seen = Vec::new();
            double_buffered(
                9,
                pipelined,
                |i| {
                    state = state.wrapping_mul(31).wrapping_add(i as u64);
                    state
                },
                |i, v| seen.push((i, v)),
            );
            // Same producer-state evolution regardless of pipelining.
            let mut expect_state = 7u64;
            let expect: Vec<(usize, u64)> = (0..9)
                .map(|i| {
                    expect_state = expect_state.wrapping_mul(31).wrapping_add(i as u64);
                    (i, expect_state)
                })
                .collect();
            assert_eq!(seen, expect, "pipelined={pipelined}");
        }
    }

    #[test]
    fn double_buffered_overlaps_producer_and_consumer() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // With a depth-1 channel the producer can run at most 2 items
        // ahead; verify it does run ahead at least once.
        let max_lead = AtomicUsize::new(0);
        let produced = AtomicUsize::new(0);
        let consumed = AtomicUsize::new(0);
        double_buffered(
            8,
            true,
            |i| {
                produced.fetch_add(1, Ordering::SeqCst);
                let lead = produced.load(Ordering::SeqCst) - consumed.load(Ordering::SeqCst);
                max_lead.fetch_max(lead, Ordering::SeqCst);
                i
            },
            |_, _| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                consumed.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert!(max_lead.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(4).thread_count(), 4);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert!(Parallelism::available().thread_count() >= 1);
    }
}
