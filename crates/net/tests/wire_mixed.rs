//! Mixed-format client populations on one daemon (DESIGN.md §16.3):
//! the per-connection format mirror must let a JSON client and a
//! binary client train side by side in the *same* session — and the
//! resulting model must be bit-identical to an all-JSON run of the
//! same configuration. The CI matrix runs this file as the dedicated
//! mixed-format arm alongside the `CRYPTONN_WIRE=binary` suite runs.

use std::sync::Arc;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_net::{
    run_client, AuthorityOptions, AuthorityServer, RemoteAuthority, ServerOptions, SessionServer,
    TcpTransport, WireFormat, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, ClientId, ClientSession, MlpSpec, SessionId,
    SessionSummary,
};

/// Trains one two-client session over TCP loopback with each client's
/// wire format chosen by `wire_of`, returning the (asserted-agreeing)
/// member summary.
fn train_session(
    addr: std::net::SocketAddr,
    session: SessionId,
    wire_of: fn(usize) -> WireFormat,
) -> SessionSummary {
    let data = clinic_dataset(12, 5);
    let spec = MlpSpec {
        feature_dim: data.feature_dim(),
        hidden: vec![4],
        classes: data.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    };
    let config = mlp_session_config(spec, 2, 1, 6, 0.5);
    let shards = round_robin_shards(&data, 6, 2);
    let workers: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let sm = ClientSession::new(
                    ClientId(i as u32),
                    config.client_seed_base + i as u64,
                    Parallelism::Serial,
                    shard,
                );
                let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME).unwrap();
                transport.set_wire_format(wire_of(i));
                run_client(transport, session, sm, &config).unwrap()
            })
        })
        .collect();
    let summaries: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(
        summaries[0], summaries[1],
        "members must see the same model"
    );
    summaries.into_iter().next().unwrap()
}

#[test]
fn mixed_format_clients_train_bit_identically() {
    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).unwrap();
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        ServerOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let all_json = train_session(addr, SessionId(1), |_| WireFormat::Json);
    let all_binary = train_session(addr, SessionId(2), |_| WireFormat::Binary);
    let mixed = train_session(addr, SessionId(3), |i| {
        if i % 2 == 0 {
            WireFormat::Binary
        } else {
            WireFormat::Json
        }
    });

    assert_eq!(
        all_binary, all_json,
        "an all-binary session must train bit-identically to all-JSON"
    );
    assert_eq!(
        mixed, all_json,
        "a mixed-dialect session must train bit-identically to all-JSON"
    );

    server.shutdown();
    authority.shutdown();
}
