//! End-to-end sessions over TCP loopback: the networked stack must be
//! an *implementation detail* — training over real sockets, through
//! the multi-session server and the networked key authority, produces
//! weights bit-identical to the deterministic in-process runner on the
//! same config and dataset; concurrent sessions stay independent; and
//! a client disconnecting mid-epoch fails only its own session.

use std::net::SocketAddr;
use std::sync::Arc;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_net::{
    run_client, AuthorityOptions, AuthorityServer, NetError, RemoteAuthority, ServerOptions,
    SessionOutcomeKind, SessionServer, TcpTransport, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, ClientId, ClientSession, MlpSpec, SessionConfig,
    SessionId, SessionSummary, TrainingSessionRunner, WireMessage,
};

fn small_config(data: &cryptonn_data::Dataset, clients: u32, epochs: u32) -> SessionConfig {
    mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        clients,
        epochs,
        3,
        0.7,
    )
}

/// A last-resort liveness backstop for the fault-injected scenarios: a
/// churn wedge (member and daemon each waiting on the other) would
/// hang the binary forever; the watchdog turns that into a fast, named
/// failure. Disarmed on drop — including a test's own panic.
struct Watchdog(Arc<std::sync::atomic::AtomicBool>);

fn watchdog(test: &'static str) -> Watchdog {
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed = Arc::clone(&done);
    std::thread::spawn(move || {
        let limit = std::time::Duration::from_secs(240);
        let deadline = std::time::Instant::now() + limit;
        while std::time::Instant::now() < deadline {
            if observed.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
        eprintln!("watchdog: {test} still running after {limit:?}; aborting the test binary");
        std::process::exit(101);
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// The worker records a session's outcome *after* broadcasting the
/// summary, so clients can observe completion slightly before the
/// ledger does; give it a moment.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Starts the two daemons wired together over loopback.
fn start_stack(options: ServerOptions) -> (AuthorityServer, SessionServer) {
    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority binds");
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        options,
    )
    .expect("server binds");
    (authority, server)
}

/// Runs one full session over TCP: shards the dataset, spawns one
/// thread per client, returns every member's summary.
fn run_tcp_session(
    addr: SocketAddr,
    session: SessionId,
    config: &SessionConfig,
    data: &cryptonn_data::Dataset,
) -> Vec<Result<SessionSummary, NetError>> {
    let shards = round_robin_shards(data, config.batch_size as usize, config.clients as usize);
    let workers: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let sm = ClientSession::new(
                    ClientId(i as u32),
                    config.client_seed_base + i as u64,
                    Parallelism::Serial,
                    shard,
                );
                let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?;
                run_client(transport, session, sm, &config)
            })
        })
        .collect();
    workers
        .into_iter()
        .map(|w| w.join().expect("client thread must not panic"))
        .collect()
}

/// The acceptance criterion: a full MLP training session over TCP
/// loopback produces weights bit-identical to the in-process
/// deterministic runner on the same config and dataset.
#[test]
fn tcp_loopback_training_matches_in_process_runner_bitwise() {
    let data = clinic_dataset(12, 41);
    let config = small_config(&data, 2, 2);

    let in_process = TrainingSessionRunner::new(config.clone())
        .run_mlp(&data)
        .expect("in-process session runs")
        .summary;

    let (authority, server) = start_stack(ServerOptions::default());
    let summaries = run_tcp_session(server.local_addr(), SessionId(7), &config, &data);
    server.shutdown();
    authority.shutdown();

    for summary in summaries {
        let summary = summary.expect("TCP client completes");
        assert_eq!(
            summary, in_process,
            "TCP loopback training diverged from the in-process runner"
        );
    }
}

/// S=4 simultaneous sessions × K=2 clients over one server/authority
/// pair: every session finishes with the weights its own in-process
/// run produces, and different workloads produce different weights
/// (independence).
#[test]
fn concurrent_sessions_finish_with_correct_independent_weights() {
    const S: usize = 4;
    const K: u32 = 2;
    let workloads: Vec<_> = (0..S)
        .map(|i| {
            let data = clinic_dataset(12, 100 + i as u64);
            let mut config = small_config(&data, K, 1);
            // Distinct seeds per session: independent keys and models.
            config.authority_seed += i as u64;
            config.model_seed += i as u64;
            (data, config)
        })
        .collect();

    let expected: Vec<SessionSummary> = workloads
        .iter()
        .map(|(data, config)| {
            TrainingSessionRunner::new(config.clone())
                .run_mlp(data)
                .expect("in-process session runs")
                .summary
        })
        .collect();

    let (authority, server) = start_stack(ServerOptions::default());
    let addr = server.local_addr();
    let sessions: Vec<_> = workloads
        .iter()
        .enumerate()
        .map(|(i, (data, config))| {
            let data = data.clone();
            let config = config.clone();
            std::thread::spawn(move || run_tcp_session(addr, SessionId(i as u64), &config, &data))
        })
        .collect();
    let results: Vec<Vec<_>> = sessions
        .into_iter()
        .map(|s| s.join().expect("session thread"))
        .collect();

    for (i, (result, expected)) in results.iter().zip(&expected).enumerate() {
        for summary in result {
            let summary = summary.as_ref().expect("TCP client completes");
            assert_eq!(summary, expected, "session {i} diverged from its baseline");
        }
    }
    // Independence: distinct workloads trained distinct models.
    for i in 0..S {
        for j in (i + 1)..S {
            assert_ne!(
                expected[i].final_w1, expected[j].final_w1,
                "sessions {i} and {j} should not share weights"
            );
        }
    }
    wait_until("all sessions to land in the ledger", || {
        server.finished_sessions().len() == S
    });
    let finished = server.finished_sessions();
    assert!(finished
        .iter()
        .all(|(_, outcome)| *outcome == SessionOutcomeKind::Completed));
    server.shutdown();
    authority.shutdown();
}

/// A client driver that behaves until `batches_before_drop` encrypted
/// batches are on the wire, then severs the connection mid-epoch.
fn faulty_client(
    addr: SocketAddr,
    session: SessionId,
    mut sm: ClientSession,
    config: &SessionConfig,
    batches_before_drop: usize,
) {
    use cryptonn_net::{FrameRx, FrameTx, Hello, NetMsg, Peer};
    let mut transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME).expect("connect");
    transport
        .send(&NetMsg::Hello(Hello {
            session,
            peer: Peer::Client(sm.id()),
            config: config.clone(),
        }))
        .expect("hello");
    let mut sent_batches = 0usize;
    let outs = sm
        .handle_message(&WireMessage::Config(config.clone()))
        .expect("config");
    for ob in outs {
        transport.send(&NetMsg::Msg(ob.msg)).expect("register");
    }
    while let Ok(Some(NetMsg::Msg(msg))) = transport.recv() {
        let outs = sm.handle_message(&msg).expect("handle");
        for ob in outs {
            if matches!(ob.msg, WireMessage::Batch(_)) {
                sent_batches += 1;
            }
            transport.send(&NetMsg::Msg(ob.msg)).expect("send");
            if sent_batches >= batches_before_drop {
                return; // dropping the transport severs the connection
            }
        }
    }
}

/// One client disconnecting mid-epoch fails only its own session: the
/// other member of that session is told, and an unrelated concurrent
/// session completes bit-exactly.
#[test]
fn mid_epoch_disconnect_fails_only_its_own_session() {
    // Enough batches per client that one sent batch is mid-epoch.
    let victim_data = clinic_dataset(24, 51);
    let victim_config = small_config(&victim_data, 2, 2);
    let healthy_data = clinic_dataset(12, 52);
    let healthy_config = small_config(&healthy_data, 2, 1);
    let healthy_expected = TrainingSessionRunner::new(healthy_config.clone())
        .run_mlp(&healthy_data)
        .expect("in-process session runs")
        .summary;

    let (authority, server) = start_stack(ServerOptions::default());
    let addr = server.local_addr();
    let victim_id = SessionId(66);
    let healthy_id = SessionId(67);

    // Victim session: client 0 is honest, client 1 drops after one batch.
    let shards = round_robin_shards(
        &victim_data,
        victim_config.batch_size as usize,
        victim_config.clients as usize,
    );
    let mut shards = shards.into_iter();
    let honest = {
        let shard = shards.next().unwrap();
        let config = victim_config.clone();
        std::thread::spawn(move || {
            let sm = ClientSession::new(
                ClientId(0),
                config.client_seed_base,
                Parallelism::Serial,
                shard,
            );
            let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?;
            run_client(transport, victim_id, sm, &config)
        })
    };
    let faulty = {
        let shard = shards.next().unwrap();
        let config = victim_config.clone();
        std::thread::spawn(move || {
            let sm = ClientSession::new(
                ClientId(1),
                config.client_seed_base + 1,
                Parallelism::Serial,
                shard,
            );
            faulty_client(addr, victim_id, sm, &config, 1);
        })
    };
    // Healthy session runs concurrently with the failing one.
    let healthy = {
        let data = healthy_data.clone();
        let config = healthy_config.clone();
        std::thread::spawn(move || run_tcp_session(addr, healthy_id, &config, &data))
    };

    faulty.join().expect("faulty client thread");
    let honest_result = honest.join().expect("honest client thread");
    match honest_result {
        Err(NetError::Rejected(why)) => {
            assert!(
                why.contains("disconnected"),
                "honest client should learn why its session died, got: {why}"
            );
        }
        Err(NetError::Disconnected) => {} // the teardown race can close first
        other => panic!("victim session must fail for its honest member, got {other:?}"),
    }

    for summary in healthy.join().expect("healthy session thread") {
        let summary = summary.expect("healthy session completes");
        assert_eq!(
            summary, healthy_expected,
            "healthy session diverged while an unrelated session failed"
        );
    }

    // The server's ledger shows one failure, one completion.
    wait_until("both sessions to land in the ledger", || {
        server.finished_sessions().len() == 2
    });
    let finished = server.finished_sessions();
    let of = |id: SessionId| {
        finished
            .iter()
            .find(|(s, _)| *s == id)
            .map(|(_, outcome)| outcome.clone())
    };
    assert_eq!(of(healthy_id), Some(SessionOutcomeKind::Completed));
    match of(victim_id) {
        Some(SessionOutcomeKind::Failed(why)) => assert!(why.contains("disconnected")),
        other => panic!("victim session should be recorded as failed, got {other:?}"),
    }
    server.shutdown();
    authority.shutdown();
}

/// The same mid-epoch disconnect under the *resume* policy: the
/// session does not fail. The dropped client's resumable driver
/// reconnects, the server's `Resume` barrier rewinds its send cursor
/// to what was actually consumed, the lost in-flight batch is
/// re-encrypted and re-sent, and both members finish bit-identical to
/// the uninterrupted in-process run.
#[test]
fn mid_epoch_disconnect_under_resume_policy_rejoins_and_completes() {
    use cryptonn_net::{run_client_resumable, FaultPlan, FaultyTransport};
    use cryptonn_protocol::SessionPolicy;

    let _watchdog = watchdog("mid_epoch_disconnect_under_resume_policy_rejoins_and_completes");
    let data = clinic_dataset(24, 53);
    let mut config = small_config(&data, 2, 2);
    config.policy = SessionPolicy::resume();
    let expected = TrainingSessionRunner::new(config.clone())
        .run_mlp(&data)
        .expect("in-process session runs")
        .summary;

    let (authority, server) = start_stack(ServerOptions::default());
    let addr = server.local_addr();
    let session = SessionId(68);
    let mut shards = round_robin_shards(&data, 3, 2).into_iter();

    let steady = {
        let shard = shards.next().unwrap();
        let config = config.clone();
        std::thread::spawn(move || {
            let sm = ClientSession::new(
                ClientId(0),
                config.client_seed_base,
                Parallelism::Serial,
                shard,
            );
            let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?;
            run_client(transport, session, sm, &config)
        })
    };
    let churned = {
        let shard = shards.next().unwrap();
        let config = config.clone();
        std::thread::spawn(move || {
            let sm = ClientSession::new(
                ClientId(1),
                config.client_seed_base + 1,
                Parallelism::Serial,
                shard,
            );
            run_client_resumable(
                |attempt| {
                    // First connection dies mid-epoch, after two
                    // encrypted batches crossed the wire; retries are
                    // clean.
                    let plan = if attempt == 0 {
                        FaultPlan::kill_after_batches(2)
                    } else {
                        FaultPlan::default()
                    };
                    Ok(FaultyTransport::new(
                        TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?,
                        plan,
                    ))
                },
                session,
                sm,
                &config,
                4,
            )
        })
    };

    let steady = steady.join().expect("steady client thread");
    let churned = churned.join().expect("churned client thread");
    assert_eq!(
        steady.expect("steady client completes despite its peer's churn"),
        expected
    );
    assert_eq!(churned.expect("churned client rejoins"), expected);

    wait_until("the session to land in the ledger", || {
        server.finished_sessions().len() == 1
    });
    assert_eq!(
        server.finished_sessions()[0],
        (session, SessionOutcomeKind::Completed)
    );
    server.shutdown();
    authority.shutdown();
}

/// A second session under the same id with a different config is
/// refused — the registry is keyed, not last-writer-wins.
#[test]
fn config_mismatch_on_an_existing_session_is_rejected() {
    let data = clinic_dataset(12, 61);
    let config = small_config(&data, 2, 1);
    let (authority, server) = start_stack(ServerOptions::default());
    let addr = server.local_addr();
    let session = SessionId(9);

    // First client creates the session but the session cannot proceed
    // (its partner never arrives with a matching config).
    let c0 = {
        let config = config.clone();
        let shard = round_robin_shards(&data, 3, 2).remove(0);
        std::thread::spawn(move || {
            let sm = ClientSession::new(ClientId(0), 1, Parallelism::Serial, shard);
            let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?;
            run_client(transport, session, sm, &config)
        })
    };
    // Give the first connection time to create the session.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut other = config.clone();
    other.lr *= 2.0;
    let shard = round_robin_shards(&data, 3, 2).remove(1);
    let sm = ClientSession::new(ClientId(1), 2, Parallelism::Serial, shard);
    let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME).expect("connect");
    let got = run_client(transport, session, sm, &other);
    assert!(
        matches!(got, Err(NetError::Rejected(ref why)) if why.contains("different config")),
        "mismatched config must be rejected, got {got:?}"
    );

    // Tear down: shutting the server down severs client 0.
    server.shutdown();
    authority.shutdown();
    let _ = c0.join().expect("client 0 thread");
}
