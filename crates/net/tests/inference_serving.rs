//! The encrypted inference serving stack over TCP loopback.
//!
//! The acceptance property: predictions served over real sockets —
//! through the inference daemon, its request coalescing, its key cache
//! and the networked authority — are **bit-identical** to in-process
//! [`CryptoMlp::predict_encrypted`] on the same ciphertexts against the
//! same trained model. Plus the serving-specific behaviors: the steady
//! state is authority-free, a malformed client costs only itself, and
//! the handshake rejects config mismatches.

use std::sync::Arc;

use cryptonn_core::{Client, CryptoMlp, Objective};
use cryptonn_data::clinic_dataset;
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    run_inference_client, AuthorityOptions, AuthorityServer, InferenceClient, InferenceServer,
    InferenceServerOptions, LocalAuthority, NetError, RemoteAuthority, DEFAULT_MAX_FRAME,
};
use cryptonn_protocol::{
    mlp_session_config, AuthoritySession, ClientId, InferenceOptions, MlpSpec, SessionConfig,
    SessionId, TrainingSessionRunner,
};

fn serving_config(data: &cryptonn_data::Dataset) -> SessionConfig {
    mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        1,
        1,
        4,
        0.7,
    )
}

/// Trains the model the daemon will serve. Deterministic: training the
/// same config on the same data twice yields bit-identical twins, which
/// is how the in-process reference model is produced.
fn trained_model(config: &SessionConfig, data: &cryptonn_data::Dataset) -> CryptoMlp {
    TrainingSessionRunner::new(config.clone())
        .run_mlp(data)
        .expect("training session completes")
        .server
        .into_mlp()
        .expect("MLP session")
}

fn inputs_for(seed: usize, n: usize, dim: usize) -> Vec<Matrix<f64>> {
    (0..n)
        .map(|i| {
            Matrix::from_fn(1 + (i % 2), dim, |r, c| {
                ((seed * 31 + i * 7 + r * 3 + c) % 11) as f64 / 11.0
            })
        })
        .collect()
}

/// Served predictions over TCP loopback == in-process predictions,
/// bit for bit, across several concurrent pipelined clients.
#[test]
fn served_predictions_are_bit_identical_to_in_process() {
    let data = clinic_dataset(16, 71);
    let config = serving_config(&data);
    let model = trained_model(&config, &data);
    let mut reference = trained_model(&config, &data);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(900),
        &config,
        model,
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions {
            session: InferenceOptions {
                max_batch: 3,
                key_cache: 256,
            },
            ..InferenceServerOptions::default()
        },
    )
    .expect("inference server");
    let addr = server.local_addr();

    // Concurrent pipelined clients, each with its own inputs and seed.
    let clients = 3usize;
    let per_client = 4usize;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let config = config.clone();
            let inputs = inputs_for(c, per_client, data.feature_dim());
            std::thread::spawn(move || {
                run_inference_client(
                    addr,
                    SessionId(900),
                    ClientId(c as u32),
                    &config,
                    7000 + c as u64,
                    &inputs,
                    2,
                )
                .expect("serving completes")
            })
        })
        .collect();
    let served: Vec<Vec<Matrix<f64>>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    assert_eq!(server.served(), (clients * per_client) as u64);
    assert!(
        server.sweeps() <= server.served(),
        "sweeps cannot exceed requests"
    );
    let stats = server.cache_stats();
    assert!(stats.hits > 0, "steady-state serving must hit the cache");
    server.shutdown();
    authority.shutdown();

    // In-process reference: same trained twin, same public parameters,
    // same client seeds => bit-identical ciphertexts, whose secure
    // decryption is exact => bit-identical predictions.
    let ref_authority = AuthoritySession::new(&config);
    let params = ref_authority.public_params_for(&config);
    for (c, outputs) in served.iter().enumerate() {
        let mut encryptor = Client::from_keys(
            params.x_mpk.clone(),
            params.y_mpk.clone(),
            params.febo_mpk.clone(),
            params.fp,
            7000 + c as u64,
        );
        for (input, served_out) in inputs_for(c, per_client, data.feature_dim())
            .iter()
            .zip(outputs)
        {
            let batch = encryptor.encrypt_features(input).expect("encrypt");
            let direct = reference
                .predict_encrypted(ref_authority.authority(), &batch)
                .expect("in-process predict");
            assert_eq!(
                served_out, &direct,
                "served prediction diverged from in-process (client {c})"
            );
        }
    }
}

/// The serving stack also runs against the in-process authority
/// connector — same key cache, same bit-identity — so a deployment
/// without a separate authority daemon is the same code path.
#[test]
fn serving_over_local_authority_matches_in_process() {
    let data = clinic_dataset(12, 75);
    let config = serving_config(&data);
    let model = trained_model(&config, &data);
    let mut reference = trained_model(&config, &data);

    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(904),
        &config,
        model,
        Arc::new(LocalAuthority),
        InferenceServerOptions::default(),
    )
    .expect("inference server over the local authority");

    let mut client = InferenceClient::connect(
        server.local_addr(),
        SessionId(904),
        ClientId(0),
        &config,
        21,
        DEFAULT_MAX_FRAME,
    )
    .expect("client connects");
    let x = Matrix::from_fn(2, data.feature_dim(), |r, c| ((r + c) % 5) as f64 / 5.0);
    let served = client.predict(&x).expect("prediction");
    let served2 = client.predict(&x).expect("second prediction");
    assert!(server.cache_stats().hits > 0, "second sweep hits the cache");
    server.shutdown();

    let ref_authority = AuthoritySession::new(&config);
    let params = ref_authority.public_params_for(&config);
    let mut encryptor = Client::from_keys(
        params.x_mpk.clone(),
        params.y_mpk.clone(),
        params.febo_mpk.clone(),
        params.fp,
        21,
    );
    for served_out in [&served, &served2] {
        let batch = encryptor.encrypt_features(&x).expect("encrypt");
        let direct = reference
            .predict_encrypted(ref_authority.authority(), &batch)
            .expect("in-process predict");
        assert_eq!(*served_out, direct);
    }
}

/// The handshake rejects a config that disagrees with the serving
/// config, and a foreign session id.
#[test]
fn mismatched_handshakes_are_rejected() {
    let data = clinic_dataset(12, 72);
    let config = serving_config(&data);
    let model = trained_model(&config, &data);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(901),
        &config,
        model,
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions::default(),
    )
    .expect("inference server");

    // Wrong learning rate: not a serving parameter, but the config is
    // the session agreement and must match bit-for-bit.
    let mut tampered = config.clone();
    tampered.lr += 1.0;
    let err = InferenceClient::connect(
        server.local_addr(),
        SessionId(901),
        ClientId(0),
        &tampered,
        1,
        DEFAULT_MAX_FRAME,
    )
    .expect_err("tampered config must be rejected");
    assert!(matches!(err, NetError::Rejected(_)), "got {err:?}");

    let err = InferenceClient::connect(
        server.local_addr(),
        SessionId(999),
        ClientId(0),
        &config,
        1,
        DEFAULT_MAX_FRAME,
    )
    .expect_err("foreign session id must be rejected");
    assert!(matches!(err, NetError::Rejected(_)), "got {err:?}");

    server.shutdown();
    authority.shutdown();
}

/// Serving is stateless per request: a client disconnecting abruptly
/// (and a malformed request) never affects another client's service.
#[test]
fn client_failures_are_isolated() {
    let data = clinic_dataset(12, 73);
    let config = serving_config(&data);
    let model = trained_model(&config, &data);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(902),
        &config,
        model,
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions {
            session: InferenceOptions {
                max_batch: 4,
                key_cache: 256,
            },
            ..InferenceServerOptions::default()
        },
    )
    .expect("inference server");
    let addr = server.local_addr();

    // A healthy client gets one answer...
    let mut healthy = InferenceClient::connect(
        addr,
        SessionId(902),
        ClientId(0),
        &config,
        11,
        DEFAULT_MAX_FRAME,
    )
    .expect("healthy client connects");
    let x = Matrix::from_fn(1, data.feature_dim(), |_, c| c as f64 / 10.0);
    let first = healthy.predict(&x).expect("first prediction");

    // ...then a second client connects, sends one request, and drops
    // dead without reading the response.
    {
        let _abandoned = InferenceClient::connect(
            addr,
            SessionId(902),
            ClientId(1),
            &config,
            12,
            DEFAULT_MAX_FRAME,
        )
        .map(|mut c| {
            let _ = c.send_request(&x);
        });
        // Dropped here: the connection dies with requests in flight.
    }

    // A third sends a wrong-dimension batch (encrypted under a foreign
    // geometry) and is rejected — alone.
    {
        let wrong = mlp_session_config(
            MlpSpec {
                feature_dim: data.feature_dim() + 1,
                hidden: vec![3],
                classes: data.classes(),
                objective: Objective::SoftmaxCrossEntropy,
            },
            1,
            1,
            4,
            0.7,
        );
        let foreign_params = AuthoritySession::new(&wrong).public_params_for(&wrong);
        let mut foreign_encryptor = Client::from_keys(
            foreign_params.x_mpk.clone(),
            foreign_params.y_mpk.clone(),
            foreign_params.febo_mpk.clone(),
            foreign_params.fp,
            13,
        );
        let bad_batch = foreign_encryptor
            .encrypt_features(&Matrix::zeros(1, data.feature_dim() + 1))
            .expect("foreign encrypt");
        let mut offender = InferenceClient::connect(
            addr,
            SessionId(902),
            ClientId(2),
            &config,
            13,
            DEFAULT_MAX_FRAME,
        )
        .expect("offender connects");
        offender.send_encrypted(bad_batch).expect("send");
        let err = offender.recv_prediction().expect_err("must be rejected");
        assert!(
            matches!(err, NetError::Rejected(_) | NetError::Disconnected),
            "got {err:?}"
        );
    }

    // The healthy client is still being served, bit-identically.
    let second = healthy.predict(&x).expect("still served");
    assert_eq!(first, second, "same input, same frozen model");

    server.shutdown();
    authority.shutdown();
}

/// Two predict connections claiming the same client id: the second is
/// refused.
#[test]
fn duplicate_client_ids_are_rejected() {
    let data = clinic_dataset(12, 74);
    let config = serving_config(&data);
    let model = trained_model(&config, &data);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(903),
        &config,
        model,
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions::default(),
    )
    .expect("inference server");

    let _first = InferenceClient::connect(
        server.local_addr(),
        SessionId(903),
        ClientId(5),
        &config,
        1,
        DEFAULT_MAX_FRAME,
    )
    .expect("first connection");
    let err = InferenceClient::connect(
        server.local_addr(),
        SessionId(903),
        ClientId(5),
        &config,
        2,
        DEFAULT_MAX_FRAME,
    )
    .expect_err("duplicate id");
    assert!(matches!(err, NetError::Rejected(_)));

    server.shutdown();
    authority.shutdown();
}
