//! Fault-injected churn over the real daemon: clients dropped by a
//! [`FaultyTransport`] mid-epoch rejoin through `run_client_resumable`
//! and the session completes bit-identical to the uninterrupted
//! in-process golden run — over the in-memory transport and over TCP —
//! and a durable daemon killed mid-epoch is restarted and resumes its
//! sessions from ledger + checkpoint to the same golden weights
//! (DESIGN.md §14).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_net::{
    run_client, run_client_resumable, AuthorityOptions, AuthorityServer, FaultPlan,
    FaultyTransport, LocalAuthority, NetError, RemoteAuthority, ServerOptions, SessionOutcomeKind,
    SessionServer, TcpTransport, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, CheckpointStore, ClientId, ClientSession, MlpSpec,
    SessionConfig, SessionId, SessionPolicy, SessionSummary, TrainingSessionRunner,
};
use parking_lot::Mutex;

fn resume_config(data: &cryptonn_data::Dataset, clients: u32, epochs: u32) -> SessionConfig {
    let mut config = mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        clients,
        epochs,
        3,
        0.7,
    );
    config.policy = SessionPolicy::resume();
    config
}

/// The uninterrupted reference run: the policy never reaches the
/// arithmetic, so the in-process runner is the golden oracle for every
/// churned variant.
fn golden(config: &SessionConfig, data: &cryptonn_data::Dataset) -> SessionSummary {
    TrainingSessionRunner::new(config.clone())
        .run_mlp(data)
        .expect("in-process golden run")
        .summary
}

type Shard = Vec<(cryptonn_matrix::Matrix<f64>, cryptonn_matrix::Matrix<f64>)>;

fn client_sm(config: &SessionConfig, i: usize, shard: Shard) -> ClientSession {
    ClientSession::new(
        ClientId(i as u32),
        config.client_seed_base + i as u64,
        Parallelism::Serial,
        shard,
    )
}

/// A last-resort liveness backstop. The wedges this suite exists to
/// catch (a member and the daemon each waiting on the other) would
/// otherwise hang the test binary forever; the watchdog turns an
/// infinite CI hang into a fast, named failure. Disarmed on drop —
/// including a test's own panic.
struct Watchdog(Arc<std::sync::atomic::AtomicBool>);

fn watchdog(test: &'static str) -> Watchdog {
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed = Arc::clone(&done);
    std::thread::spawn(move || {
        let limit = Duration::from_secs(240);
        let deadline = std::time::Instant::now() + limit;
        while std::time::Instant::now() < deadline {
            if observed.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        }
        eprintln!("watchdog: {test} still running after {limit:?}; aborting the test binary");
        std::process::exit(101);
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cryptonn-churn-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// A scripted kill over the in-memory transport: client 1's connection
/// dies after two encrypted batches crossed the wire mid-epoch; the
/// resumable driver reconnects through `connect_mem`, the server's
/// `Resume` barrier rewinds its cursor, and both members finish with
/// the golden weights.
#[test]
fn mem_transport_kill_rejoins_bit_identical_to_golden() {
    let _watchdog = watchdog("mem_transport_kill_rejoins_bit_identical_to_golden");
    let data = clinic_dataset(24, 151);
    let config = resume_config(&data, 2, 2);
    let expected = golden(&config, &data);

    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(LocalAuthority),
        ServerOptions::default(),
    )
    .expect("server binds");
    let session = SessionId(21);
    let mut shards = round_robin_shards(&data, 3, 2).into_iter();
    let shard0 = shards.next().unwrap();
    let shard1 = shards.next().unwrap();

    let (steady, churned) = std::thread::scope(|s| {
        let steady = s.spawn(|| {
            run_client(
                server.connect_mem(),
                session,
                client_sm(&config, 0, shard0),
                &config,
            )
        });
        let churned = s.spawn(|| {
            run_client_resumable(
                |attempt| {
                    let plan = if attempt == 0 {
                        FaultPlan::kill_after_batches(2)
                    } else {
                        FaultPlan::default()
                    };
                    Ok(FaultyTransport::new(server.connect_mem(), plan))
                },
                session,
                client_sm(&config, 1, shard1),
                &config,
                4,
            )
        });
        (
            steady.join().expect("steady client thread"),
            churned.join().expect("churned client thread"),
        )
    });

    assert_eq!(steady.expect("steady client completes"), expected);
    assert_eq!(churned.expect("churned client rejoins"), expected);
    wait_until("the session to land in the ledger", || {
        server.finished_sessions().len() == 1
    });
    assert_eq!(
        server.finished_sessions()[0],
        (session, SessionOutcomeKind::Completed)
    );
    server.shutdown();
}

/// Seeded-random churn over the in-memory transport: every frame
/// boundary of the churning client may kill the connection (a fresh
/// seed per attempt), yet the resumable driver always converges to the
/// golden weights — the rewind is idempotent under arbitrary kill
/// points.
#[test]
fn seeded_random_kills_still_converge_to_golden() {
    let _watchdog = watchdog("seeded_random_kills_still_converge_to_golden");
    let data = clinic_dataset(24, 152);
    let config = resume_config(&data, 2, 2);
    let expected = golden(&config, &data);

    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(LocalAuthority),
        ServerOptions::default(),
    )
    .expect("server binds");
    let session = SessionId(22);
    let mut shards = round_robin_shards(&data, 3, 2).into_iter();
    let shard0 = shards.next().unwrap();
    let shard1 = shards.next().unwrap();

    let (steady, churned) = std::thread::scope(|s| {
        let steady = s.spawn(|| {
            run_client(
                server.connect_mem(),
                session,
                client_sm(&config, 0, shard0),
                &config,
            )
        });
        let churned = s.spawn(|| {
            run_client_resumable(
                |attempt| {
                    // A distinct seed per attempt: the fault sequence
                    // differs across reconnects but the whole scenario
                    // replays bit-identically run-to-run.
                    let plan = FaultPlan::random(9000 + u64::from(attempt), 0.04);
                    Ok(FaultyTransport::new(server.connect_mem(), plan))
                },
                session,
                client_sm(&config, 1, shard1),
                &config,
                32,
            )
        });
        (
            steady.join().expect("steady client thread"),
            churned.join().expect("churned client thread"),
        )
    });

    assert_eq!(steady.expect("steady client completes"), expected);
    assert_eq!(churned.expect("churned client converges"), expected);
    server.shutdown();
}

/// The kill-9 scenario: a durable daemon is torn down mid-epoch with
/// two sessions in flight, then a *fresh* daemon process (same
/// durability directory, new port) takes over. One session resumes
/// from its checkpoint plus the ledger suffix; the other — checkpoint
/// deleted to model a corrupt/lost file — replays its whole ledger
/// from offset zero. Both complete bit-identical to their golden runs
/// and their durable state is reclaimed.
#[test]
fn restarted_daemon_resumes_durable_sessions_to_completion() {
    let _watchdog = watchdog("restarted_daemon_resumes_durable_sessions_to_completion");
    let dir = tempdir("crash-resume");
    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("authority binds");
    let options = ServerOptions {
        durability: Some(dir.clone()),
        checkpoint_every_steps: 2,
        ..ServerOptions::default()
    };
    let server_a = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        options.clone(),
    )
    .expect("server A binds");
    // Clients re-resolve the daemon address on every attempt, so the
    // restarted daemon's fresh port is picked up transparently.
    let addr = Arc::new(Mutex::new(server_a.local_addr()));

    let with_ckpt = SessionId(31);
    let without_ckpt = SessionId(32);
    let workloads: Vec<(SessionId, cryptonn_data::Dataset, SessionConfig)> =
        [(with_ckpt, 161u64), (without_ckpt, 162u64)]
            .into_iter()
            .map(|(id, seed)| {
                let data = clinic_dataset(24, seed);
                let mut config = resume_config(&data, 2, 2);
                // Distinct seeds per session: independent keys + models.
                config.authority_seed += id.0;
                config.model_seed += id.0;
                (id, data, config)
            })
            .collect();
    let expected: Vec<SessionSummary> = workloads
        .iter()
        .map(|(_, data, config)| golden(config, data))
        .collect();

    let clients: Vec<_> = workloads
        .iter()
        .flat_map(|(id, data, config)| {
            let shards = round_robin_shards(data, 3, 2);
            shards.into_iter().enumerate().map({
                let id = *id;
                let config = config.clone();
                let addr = Arc::clone(&addr);
                move |(i, shard)| {
                    let sm = client_sm(&config, i, shard);
                    let config = config.clone();
                    let addr = Arc::clone(&addr);
                    std::thread::spawn(move || {
                        run_client_resumable(
                            |_attempt| {
                                // Block until a daemon is reachable: the
                                // crash-restart gap looks like transient
                                // connection refusal, not a give-up.
                                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                                loop {
                                    let target = *addr.lock();
                                    match TcpTransport::connect(target, DEFAULT_MAX_FRAME) {
                                        Ok(t) => {
                                            // Throttle every frame so the
                                            // daemon dies genuinely
                                            // mid-epoch, not post-run.
                                            return Ok(FaultyTransport::new(
                                                t,
                                                FaultPlan {
                                                    delay_every_sends: Some((
                                                        1,
                                                        Duration::from_millis(15),
                                                    )),
                                                    ..FaultPlan::default()
                                                },
                                            ));
                                        }
                                        Err(e) => {
                                            if std::time::Instant::now() >= deadline {
                                                return Err(e.into());
                                            }
                                            std::thread::sleep(Duration::from_millis(25));
                                        }
                                    }
                                }
                            },
                            id,
                            sm,
                            &config,
                            8,
                        )
                    })
                }
            })
        })
        .collect();

    // Both sessions mid-flight with a checkpoint on disk = past the
    // cadence step, with most of the schedule still untrained.
    let store = CheckpointStore::new(dir.clone());
    wait_until("both sessions to cut a checkpoint", || {
        store.path(with_ckpt).exists() && store.path(without_ckpt).exists()
    });
    server_a.shutdown(); // in-flight sessions land Failed, ledgers kept

    // Model a lost/corrupt checkpoint for one session: its resume must
    // fall back to replaying the whole ledger from offset zero.
    std::fs::remove_file(store.path(without_ckpt)).expect("delete one checkpoint");

    let server_b = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        options,
    )
    .expect("server B binds");
    *addr.lock() = server_b.local_addr();

    let summaries: Vec<Result<SessionSummary, NetError>> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    for (i, summary) in summaries.into_iter().enumerate() {
        let summary = summary.expect("client completes across the daemon restart");
        assert_eq!(
            summary,
            expected[i / 2],
            "client {i} diverged from its golden run across the restart"
        );
    }

    // The restarted daemon reports how it brought each session back.
    let resumed = server_b.resumed_sessions();
    assert_eq!(resumed.len(), 2, "both sessions resumed: {resumed:?}");
    let of = |id: SessionId| {
        resumed
            .iter()
            .find(|r| r.session == id)
            .unwrap_or_else(|| panic!("{id} missing from resumed_sessions"))
            .clone()
    };
    assert!(
        of(with_ckpt).from_checkpoint,
        "the intact checkpoint must anchor the resume"
    );
    assert!(
        !of(without_ckpt).from_checkpoint,
        "the deleted checkpoint must force a full-ledger replay"
    );
    assert!(
        of(without_ckpt).replayed_events >= of(with_ckpt).replayed_events,
        "full replay covers at least the suffix the checkpoint skipped"
    );

    wait_until("both sessions to complete on the restarted daemon", || {
        server_b.finished_sessions().len() == 2
    });
    assert!(server_b
        .finished_sessions()
        .iter()
        .all(|(_, outcome)| *outcome == SessionOutcomeKind::Completed));
    // Completion reclaims the durable state: nothing left to resume.
    for id in [with_ckpt, without_ckpt] {
        assert!(
            !store.path(id).exists(),
            "{id} checkpoint must be reclaimed on completion"
        );
        assert!(
            !dir.join(format!("{id}.ledger.jsonl")).exists(),
            "{id} ledger must be reclaimed on completion"
        );
    }
    server_b.shutdown();
    authority.shutdown();
}

/// `connect_mem` and TCP loopback speak the same daemon: a plain
/// (fault-free) in-memory session must match the golden run too, so
/// the churn assertions above are isolating churn, not the transport.
#[test]
fn mem_transport_without_faults_matches_golden() {
    let _watchdog = watchdog("mem_transport_without_faults_matches_golden");
    let data = clinic_dataset(12, 153);
    let config = resume_config(&data, 2, 1);
    let expected = golden(&config, &data);
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(LocalAuthority),
        ServerOptions::default(),
    )
    .expect("server binds");
    let session = SessionId(23);
    let summaries = std::thread::scope(|s| {
        let handles: Vec<_> = round_robin_shards(&data, 3, 2)
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let config = &config;
                let server = &server;
                s.spawn(move || {
                    run_client(
                        server.connect_mem(),
                        session,
                        client_sm(config, i, shard),
                        config,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    for summary in summaries {
        assert_eq!(summary.expect("mem client completes"), expected);
    }
    server.shutdown();
}

/// A member whose connection dies in the final stretch — even on the
/// summary frame itself — may only rejoin *after* the session
/// completed and left the live registry. The daemon answers from its
/// record of completed sessions: the rejoiner is served the
/// bit-identical summary, and a config mismatch under the spent id is
/// refused — never a phantom new session that would wait forever for
/// peers.
#[test]
fn rejoin_after_completion_is_served_the_recorded_summary() {
    let _watchdog = watchdog("rejoin_after_completion_is_served_the_recorded_summary");
    let data = clinic_dataset(12, 154);
    let config = resume_config(&data, 2, 1);
    let expected = golden(&config, &data);
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(LocalAuthority),
        ServerOptions::default(),
    )
    .expect("server binds");
    let session = SessionId(24);
    let shards = round_robin_shards(&data, 3, 2);
    let late_shard = shards[1].clone();

    let summaries = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let config = &config;
                let server = &server;
                s.spawn(move || {
                    run_client(
                        server.connect_mem(),
                        session,
                        client_sm(config, i, shard),
                        config,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    for summary in summaries {
        assert_eq!(summary.expect("member completes"), expected);
    }
    wait_until("the completion to be recorded", || {
        server.finished_sessions().len() == 1
    });

    // The late rejoiner: same id, same config, a fresh connection.
    let replay = run_client(
        server.connect_mem(),
        session,
        client_sm(&config, 1, late_shard.clone()),
        &config,
    )
    .expect("a late rejoiner is served the recorded summary");
    assert_eq!(replay, expected);
    assert_eq!(
        server.live_sessions(),
        0,
        "a spent id must not found a phantom session"
    );

    // A different config under the spent id is a mismatch, not a
    // fresh session.
    let mut other = resume_config(&data, 2, 1);
    other.model_seed += 1;
    let err = run_client(
        server.connect_mem(),
        session,
        client_sm(&other, 1, late_shard),
        &other,
    )
    .expect_err("a different config under a spent id must be refused");
    assert!(
        matches!(err, NetError::Rejected(ref why) if why.contains("different config")),
        "unexpected error: {err:?}"
    );
    assert_eq!(server.live_sessions(), 0);
    server.shutdown();
}

/// A failed session's id is spent too: a client rejoining it is told
/// the recorded verdict instead of founding a phantom replacement that
/// could never complete.
#[test]
fn rejoin_after_failure_is_rejected_with_the_verdict() {
    let _watchdog = watchdog("rejoin_after_failure_is_rejected_with_the_verdict");
    let data = clinic_dataset(12, 155);
    let mut config = resume_config(&data, 2, 1);
    config.policy = SessionPolicy::FailFast;
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(LocalAuthority),
        ServerOptions::default(),
    )
    .expect("server binds");
    let session = SessionId(25);
    let shards = round_robin_shards(&data, 3, 2);

    // A lone member that completes the handshake and then drops kills
    // a fail-fast session. (The kill lands after PublicParams crossed,
    // so the daemon has the connection registered and observes the
    // EOF.)
    run_client(
        FaultyTransport::new(
            server.connect_mem(),
            FaultPlan {
                kill_after_recvs: Some(1),
                ..FaultPlan::default()
            },
        ),
        session,
        client_sm(&config, 0, shards[0].clone()),
        &config,
    )
    .expect_err("the killed connection cannot complete");
    wait_until("the failure to be recorded", || {
        !server.finished_sessions().is_empty()
    });

    let err = run_client(
        server.connect_mem(),
        session,
        client_sm(&config, 0, shards[0].clone()),
        &config,
    )
    .expect_err("rejoining a failed session must be refused");
    assert!(
        matches!(err, NetError::Rejected(ref why) if why.contains("failed")),
        "unexpected error: {err:?}"
    );
    assert_eq!(server.live_sessions(), 0);
    server.shutdown();
}
