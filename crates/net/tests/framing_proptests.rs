//! Fuzz-style properties of the framed codec: frames must survive
//! arbitrary byte-boundary splits (a TCP stream owes no alignment),
//! and every malformed input class must come back as its typed error,
//! never a panic or a hang.

use proptest::prelude::*;

use cryptonn_net::{encode_frame, read_frame, write_frame, NetMsg, DEFAULT_MAX_FRAME};
use cryptonn_protocol::{ClientId, EpochBarrier, ModelDelta, TrainingStart, WireMessage};

/// A reader that hands out the underlying bytes in chunks whose sizes
/// follow `cuts` — simulating a TCP stream fragmenting frames at
/// arbitrary boundaries.
struct ChoppyReader {
    data: Vec<u8>,
    pos: usize,
    cuts: Vec<usize>,
    next_cut: usize,
}

impl std::io::Read for ChoppyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.cuts[self.next_cut % self.cuts.len()].max(1);
        self.next_cut += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn msg_strategy() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        any::<u64>().prop_map(|seed| {
            NetMsg::Msg(WireMessage::Delta(ModelDelta {
                step: seed % 100_000,
                client: ClientId((seed >> 17) as u32 % 16),
                loss: ((seed % 2_000_001) as f64 / 1000.0) - 1000.0,
            }))
        }),
        (0u64..10_000).prop_map(|b| {
            NetMsg::Msg(WireMessage::Start(TrainingStart {
                batches_per_epoch: b,
            }))
        }),
        (0u32..100).prop_map(|e| NetMsg::Msg(WireMessage::Epoch(EpochBarrier { epoch: e }))),
        proptest::collection::vec(0u8..128, 0..64)
            .prop_map(|bytes| { NetMsg::Reject(String::from_utf8_lossy(&bytes).into_owned()) }),
    ]
}

proptest! {
    /// Any frame sequence, split at any byte boundaries, decodes back
    /// to the original messages followed by a clean EOF.
    #[test]
    fn frames_survive_arbitrary_splits(
        msgs in proptest::collection::vec(msg_strategy(), 1..6),
        cuts in proptest::collection::vec(1usize..13, 1..8),
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            write_frame(&mut wire, msg, DEFAULT_MAX_FRAME).unwrap();
        }
        let mut reader = ChoppyReader { data: wire, pos: 0, cuts, next_cut: 0 };
        let mut decoded = Vec::new();
        while let Some(msg) = read_frame::<_, NetMsg>(&mut reader, DEFAULT_MAX_FRAME).unwrap() {
            decoded.push(msg);
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// Truncating a frame stream at any interior byte yields a typed
    /// truncation error (or a clean EOF exactly at a frame boundary) —
    /// never a panic and never a bogus message.
    #[test]
    fn truncation_never_panics(
        msgs in proptest::collection::vec(msg_strategy(), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for msg in &msgs {
            write_frame(&mut wire, msg, DEFAULT_MAX_FRAME).unwrap();
            boundaries.push(wire.len());
        }
        let cut = ((wire.len() as f64) * frac) as usize;
        wire.truncate(cut);
        let mut reader = &wire[..];
        loop {
            match read_frame::<_, NetMsg>(&mut reader, DEFAULT_MAX_FRAME) {
                Ok(Some(_)) => {} // a fully-contained prefix frame
                Ok(None) => {
                    // Clean EOF is only legal exactly on a boundary.
                    prop_assert!(boundaries.contains(&cut));
                    break;
                }
                Err(cryptonn_net::NetError::Truncated { missing }) => {
                    prop_assert!(missing > 0);
                    prop_assert!(!boundaries.contains(&cut));
                    break;
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    /// The frame cap is enforced against hostile headers before any
    /// payload allocation.
    #[test]
    fn hostile_lengths_are_capped(len in 1024u32..u32::MAX) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_be_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let got = read_frame::<_, NetMsg>(&mut &wire[..], 1023);
        prop_assert!(matches!(
            got,
            Err(cryptonn_net::NetError::FrameTooLarge { max: 1023, .. })
        ));
    }

    /// Flipping any byte of a frame payload never panics the decoder:
    /// it either still parses (rare) or fails typed.
    #[test]
    fn corrupted_payloads_fail_typed(
        msg in msg_strategy(),
        flip_at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = encode_frame(&msg, DEFAULT_MAX_FRAME).unwrap();
        let payload_len = wire.len() - 4;
        if payload_len == 0 {
            return Ok(());
        }
        let idx = 4 + flip_at % payload_len;
        wire[idx] ^= xor;
        match read_frame::<_, NetMsg>(&mut &wire[..], DEFAULT_MAX_FRAME) {
            Ok(Some(_)) | Err(cryptonn_net::NetError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }
}
