//! Fuzz-style properties of the framed codec: frames must survive
//! arbitrary byte-boundary splits (a TCP stream owes no alignment),
//! and every malformed input class must come back as its typed error,
//! never a panic or a hang. Every property runs over both wire
//! formats — seed JSON and the binary codec — including mixed-format
//! streams on one connection, which the sniffing reader must tell
//! apart frame by frame.

use proptest::prelude::*;

use cryptonn_net::{
    encode_frame_fmt, read_frame, read_frame_sniff, NetMsg, WireFormat, DEFAULT_MAX_FRAME,
};
use cryptonn_protocol::{ClientId, EpochBarrier, ModelDelta, TrainingStart, WireMessage};

/// A reader that hands out the underlying bytes in chunks whose sizes
/// follow `cuts` — simulating a TCP stream fragmenting frames at
/// arbitrary boundaries.
struct ChoppyReader {
    data: Vec<u8>,
    pos: usize,
    cuts: Vec<usize>,
    next_cut: usize,
}

impl std::io::Read for ChoppyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.cuts[self.next_cut % self.cuts.len()].max(1);
        self.next_cut += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn msg_strategy() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        any::<u64>().prop_map(|seed| {
            NetMsg::Msg(WireMessage::Delta(ModelDelta {
                step: seed % 100_000,
                client: ClientId((seed >> 17) as u32 % 16),
                loss: ((seed % 2_000_001) as f64 / 1000.0) - 1000.0,
            }))
        }),
        (0u64..10_000).prop_map(|b| {
            NetMsg::Msg(WireMessage::Start(TrainingStart {
                batches_per_epoch: b,
            }))
        }),
        (0u32..100).prop_map(|e| NetMsg::Msg(WireMessage::Epoch(EpochBarrier { epoch: e }))),
        proptest::collection::vec(0u8..128, 0..64)
            .prop_map(|bytes| { NetMsg::Reject(String::from_utf8_lossy(&bytes).into_owned()) }),
    ]
}

fn format_strategy() -> impl Strategy<Value = WireFormat> {
    prop_oneof![Just(WireFormat::Json), Just(WireFormat::Binary)]
}

/// Pairs each message with a format coin flip — a mixed-format stream
/// as one daemon sees it from two dialects of client. (The vendored
/// proptest has no tuple strategies, so messages and coins arrive as
/// separate draws and are zipped here; coins cycle if short.)
fn mixed_stream(msgs: Vec<NetMsg>, coins: &[bool]) -> Vec<(NetMsg, WireFormat)> {
    msgs.into_iter()
        .enumerate()
        .map(|(i, m)| {
            let binary = coins.get(i % coins.len().max(1)).copied().unwrap_or(false);
            (
                m,
                if binary {
                    WireFormat::Binary
                } else {
                    WireFormat::Json
                },
            )
        })
        .collect()
}

proptest! {
    /// Any mixed-format frame sequence, split at any byte boundaries,
    /// decodes back to the original messages — with each frame's
    /// format correctly sniffed — followed by a clean EOF.
    #[test]
    fn frames_survive_arbitrary_splits(
        raw in proptest::collection::vec(msg_strategy(), 1..6),
        coins in proptest::collection::vec(any::<bool>(), 1..7),
        cuts in proptest::collection::vec(1usize..13, 1..8),
    ) {
        let msgs = mixed_stream(raw, &coins);
        let mut wire = Vec::new();
        for (msg, fmt) in &msgs {
            wire.extend_from_slice(&encode_frame_fmt(msg, DEFAULT_MAX_FRAME, *fmt).unwrap());
        }
        let mut reader = ChoppyReader { data: wire, pos: 0, cuts, next_cut: 0 };
        let mut decoded = Vec::new();
        while let Some(pair) = read_frame_sniff::<_, NetMsg>(&mut reader, DEFAULT_MAX_FRAME).unwrap() {
            decoded.push(pair);
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// Truncating a frame stream at any interior byte yields a typed
    /// truncation error (or a clean EOF exactly at a frame boundary) —
    /// never a panic and never a bogus message. Holds for both formats.
    #[test]
    fn truncation_never_panics(
        raw in proptest::collection::vec(msg_strategy(), 1..4),
        coins in proptest::collection::vec(any::<bool>(), 1..5),
        frac in 0.0f64..1.0,
    ) {
        let msgs = mixed_stream(raw, &coins);
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for (msg, fmt) in &msgs {
            wire.extend_from_slice(&encode_frame_fmt(msg, DEFAULT_MAX_FRAME, *fmt).unwrap());
            boundaries.push(wire.len());
        }
        let cut = ((wire.len() as f64) * frac) as usize;
        wire.truncate(cut);
        let mut reader = &wire[..];
        loop {
            match read_frame::<_, NetMsg>(&mut reader, DEFAULT_MAX_FRAME) {
                Ok(Some(_)) => {} // a fully-contained prefix frame
                Ok(None) => {
                    // Clean EOF is only legal exactly on a boundary.
                    prop_assert!(boundaries.contains(&cut));
                    break;
                }
                Err(cryptonn_net::NetError::Truncated { missing }) => {
                    prop_assert!(missing > 0);
                    prop_assert!(!boundaries.contains(&cut));
                    break;
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }

    /// The frame cap is enforced against hostile headers before any
    /// payload allocation.
    #[test]
    fn hostile_lengths_are_capped(len in 1024u32..u32::MAX) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_be_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let got = read_frame::<_, NetMsg>(&mut &wire[..], 1023);
        prop_assert!(matches!(
            got,
            Err(cryptonn_net::NetError::FrameTooLarge { max: 1023, .. })
        ));
    }

    /// Flipping any byte of a frame payload never panics the decoder:
    /// it either still parses (rare) or fails typed — for JSON payloads,
    /// binary payloads, and flips that turn one format's sniff byte
    /// into the other's.
    #[test]
    fn corrupted_payloads_fail_typed(
        msg in msg_strategy(),
        fmt in format_strategy(),
        flip_at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, fmt).unwrap();
        let payload_len = wire.len() - 4;
        if payload_len == 0 {
            return Ok(());
        }
        let idx = 4 + flip_at % payload_len;
        wire[idx] ^= xor;
        match read_frame::<_, NetMsg>(&mut &wire[..], DEFAULT_MAX_FRAME) {
            Ok(Some(_)) | Err(cryptonn_net::NetError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Chopping bytes off the *end of a binary payload* (with the
    /// header length patched to match, so the frame itself is whole)
    /// is a malformed payload, not a crash: every length prefix inside
    /// the binary encoding is validated against the remaining input.
    #[test]
    fn truncated_binary_payloads_fail_typed(
        msg in msg_strategy(),
        drop in 1usize..64,
    ) {
        let full = encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, WireFormat::Binary).unwrap();
        let payload_len = full.len() - 4;
        if drop >= payload_len {
            return Ok(());
        }
        let kept = payload_len - drop;
        let mut wire = Vec::with_capacity(4 + kept);
        wire.extend_from_slice(&(kept as u32).to_be_bytes());
        wire.extend_from_slice(&full[4..4 + kept]);
        match read_frame::<_, NetMsg>(&mut &wire[..], DEFAULT_MAX_FRAME) {
            Err(cryptonn_net::NetError::Malformed(_)) => {}
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }
}
