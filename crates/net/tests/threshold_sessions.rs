//! Threshold-authority fault injection over the real daemons: training
//! and serving through a t-of-n share-holder fleet are bit-identical to
//! the single authority — including with `n − t` nodes killed mid-run —
//! losing the quorum fails closed with a typed error instead of a hang,
//! and a checkpoint cut under a single authority resumes under a 2-of-3
//! threshold service (DESIGN.md §17).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cryptonn_core::{Client, Objective};
use cryptonn_data::clinic_dataset;
use cryptonn_fe::{ShareSpec, ThresholdSetup};
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    connector_from_spec, run_client, run_client_resumable, run_inference_client, AuthorityOptions,
    AuthorityServer, FaultPlan, FaultyTransport, InferenceServer, InferenceServerOptions, NetError,
    RemoteAuthority, ServerOptions, SessionOutcomeKind, SessionServer, TcpTransport,
    ThresholdAuthority, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, AuthoritySession, CheckpointStore, ClientId,
    ClientSession, MlpSpec, SessionConfig, SessionId, SessionPolicy, SessionSummary,
    TrainingSessionRunner,
};
use parking_lot::Mutex;

fn resume_config(data: &cryptonn_data::Dataset, clients: u32, epochs: u32) -> SessionConfig {
    let mut config = mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        clients,
        epochs,
        3,
        0.7,
    );
    config.policy = SessionPolicy::resume();
    config
}

/// The uninterrupted single-authority reference run — the golden
/// oracle every threshold variant must match bit-for-bit.
fn golden(config: &SessionConfig, data: &cryptonn_data::Dataset) -> SessionSummary {
    TrainingSessionRunner::new(config.clone())
        .run_mlp(data)
        .expect("in-process golden run")
        .summary
}

type Shard = Vec<(Matrix<f64>, Matrix<f64>)>;

fn client_sm(config: &SessionConfig, i: usize, shard: Shard) -> ClientSession {
    ClientSession::new(
        ClientId(i as u32),
        config.client_seed_base + i as u64,
        Parallelism::Serial,
        shard,
    )
}

/// A last-resort liveness backstop: the quorum-loss scenarios this
/// suite pins must fail *closed*, so a wedge (combiner and daemon each
/// waiting on the other) becomes a fast named failure instead of an
/// infinite CI hang. Disarmed on drop — including a test's own panic.
struct Watchdog(Arc<std::sync::atomic::AtomicBool>);

fn watchdog(test: &'static str) -> Watchdog {
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed = Arc::clone(&done);
    std::thread::spawn(move || {
        let limit = Duration::from_secs(240);
        let deadline = std::time::Instant::now() + limit;
        while std::time::Instant::now() < deadline {
            if observed.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        }
        eprintln!("watchdog: {test} still running after {limit:?}; aborting the test binary");
        std::process::exit(101);
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn tempdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cryptonn-threshold-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// Starts `n` share-holder daemons of a t-of-n deployment and a
/// connector pointed at all of them.
fn share_fleet(n: u32, t: u32) -> (Vec<AuthorityServer>, ThresholdAuthority) {
    let setup = ThresholdSetup::new(n, t).expect("valid setup");
    let daemons: Vec<AuthorityServer> = (1..=n)
        .map(|i| {
            let spec = ShareSpec::new(setup, i).expect("index in range");
            AuthorityServer::start("127.0.0.1:0", AuthorityOptions::share_node(spec))
                .expect("share daemon binds")
        })
        .collect();
    let addrs = daemons.iter().map(|d| d.local_addr()).collect();
    (daemons, ThresholdAuthority::new(addrs, setup))
}

fn run_training(
    connector: ThresholdAuthority,
    session: SessionId,
    config: &SessionConfig,
    data: &cryptonn_data::Dataset,
) -> (Vec<Result<SessionSummary, NetError>>, SessionServer) {
    let server = SessionServer::start("127.0.0.1:0", Arc::new(connector), ServerOptions::default())
        .expect("server binds");
    let summaries = std::thread::scope(|s| {
        let handles: Vec<_> = round_robin_shards(data, 3, 2)
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let config = &config;
                let server = &server;
                s.spawn(move || {
                    run_client(
                        server.connect_mem(),
                        session,
                        client_sm(config, i, shard),
                        config,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    (summaries, server)
}

/// Fault-free 2-of-3 training over real share daemons is bit-identical
/// to the in-process single-authority golden run.
#[test]
fn threshold_training_is_bit_identical_to_golden() {
    let _watchdog = watchdog("threshold_training_is_bit_identical_to_golden");
    let data = clinic_dataset(24, 241);
    let config = resume_config(&data, 2, 2);
    let expected = golden(&config, &data);
    let (daemons, connector) = share_fleet(3, 2);
    let (summaries, server) = run_training(connector, SessionId(41), &config, &data);
    for summary in summaries {
        assert_eq!(summary.expect("threshold client completes"), expected);
    }
    wait_until("the session to finish", || {
        server.finished_sessions().len() == 1
    });
    assert_eq!(
        server.finished_sessions()[0],
        (SessionId(41), SessionOutcomeKind::Completed)
    );
    server.shutdown();
    for d in daemons {
        d.shutdown();
    }
}

/// The `n = t = 1` degenerate deployment — one share daemon behind the
/// threshold connector — is the single authority, bit for bit.
#[test]
fn single_node_threshold_degenerates_to_single_authority() {
    let _watchdog = watchdog("single_node_threshold_degenerates_to_single_authority");
    let data = clinic_dataset(12, 242);
    let config = resume_config(&data, 2, 1);
    let expected = golden(&config, &data);
    let (daemons, connector) = share_fleet(1, 1);
    let (summaries, server) = run_training(connector, SessionId(42), &config, &data);
    for summary in summaries {
        assert_eq!(summary.expect("degenerate client completes"), expected);
    }
    server.shutdown();
    for d in daemons {
        d.shutdown();
    }
}

/// Killing `n − t` share-holders mid-training: the combiner evicts the
/// dead node, recombines on the surviving quorum, and the final weights
/// are bit-identical to the fault-free golden run.
#[test]
fn killing_n_minus_t_nodes_mid_training_is_bit_identical() {
    let _watchdog = watchdog("killing_n_minus_t_nodes_mid_training_is_bit_identical");
    let data = clinic_dataset(24, 243);
    let config = resume_config(&data, 2, 2);
    let expected = golden(&config, &data);
    let (daemons, connector) = share_fleet(3, 2);
    // Node 0 dies after a few derivation frames — mid-training, after
    // key traffic has started flowing.
    let connector = connector.with_fault_plan(0, FaultPlan::kill_after_sends(3));
    let (summaries, server) = run_training(connector, SessionId(43), &config, &data);
    for summary in summaries {
        assert_eq!(
            summary.expect("client completes despite the dead node"),
            expected
        );
    }
    wait_until("the session to finish", || {
        server.finished_sessions().len() == 1
    });
    assert_eq!(
        server.finished_sessions()[0],
        (SessionId(43), SessionOutcomeKind::Completed)
    );
    server.shutdown();
    for d in daemons {
        d.shutdown();
    }
}

/// Killing `n − t + 1` share-holders loses the quorum: the session must
/// fail **closed** with the typed quorum error propagated to the
/// members — never a hang (the watchdog pins that) and never a silently
/// wrong key.
#[test]
fn losing_the_quorum_fails_closed_with_a_typed_error() {
    let _watchdog = watchdog("losing_the_quorum_fails_closed_with_a_typed_error");
    let data = clinic_dataset(24, 244);
    let mut config = resume_config(&data, 2, 2);
    config.policy = SessionPolicy::FailFast;
    let (daemons, connector) = share_fleet(3, 2);
    // Two of three nodes die at the same derivation frame: 1 < t live.
    let connector = connector
        .with_fault_plan(0, FaultPlan::kill_after_sends(2))
        .with_fault_plan(1, FaultPlan::kill_after_sends(2));
    let (summaries, server) = run_training(connector, SessionId(44), &config, &data);
    // Every member errors out — no member hangs and none completes. The
    // teardown `Reject` can race a member's in-flight send (that member
    // sees the disconnect), so the typed reason is pinned below via the
    // recorded verdict and the rejoin refusal, which carry it
    // deterministically.
    for summary in summaries {
        summary.expect_err("a below-quorum session cannot complete");
    }
    wait_until("the failure to be recorded", || {
        !server.finished_sessions().is_empty()
    });
    let (failed_id, outcome) = server.finished_sessions()[0].clone();
    assert_eq!(failed_id, SessionId(44));
    assert!(
        matches!(outcome, SessionOutcomeKind::Failed(ref why) if why.to_lowercase().contains("quorum")),
        "expected a quorum-failure verdict, got {outcome:?}"
    );
    // A member coming back for the verdict is refused with the typed
    // quorum reason — the failure is explained, not just observed.
    let err = run_client(
        server.connect_mem(),
        SessionId(44),
        client_sm(&config, 0, round_robin_shards(&data, 3, 2)[0].clone()),
        &config,
    )
    .expect_err("rejoining the failed session must be refused");
    assert!(
        matches!(err, NetError::Rejected(ref why) if why.to_lowercase().contains("quorum")),
        "expected the quorum verdict to reach the member, got: {err:?}"
    );
    server.shutdown();
    for d in daemons {
        d.shutdown();
    }
}

/// Killing `n − t` share-holders mid-*serving*: predictions out of the
/// inference daemon stay bit-identical to the in-process reference —
/// the functional keys the surviving quorum recombines are the exact
/// keys the single authority would have derived.
#[test]
fn killing_a_node_mid_serving_keeps_predictions_bit_identical() {
    let _watchdog = watchdog("killing_a_node_mid_serving_keeps_predictions_bit_identical");
    let data = clinic_dataset(16, 245);
    let config = resume_config(&data, 1, 1);
    let train = |cfg: &SessionConfig| {
        TrainingSessionRunner::new(cfg.clone())
            .run_mlp(&data)
            .expect("training completes")
            .server
            .into_mlp()
            .expect("MLP session")
    };
    let model = train(&config);
    let mut reference = train(&config);

    let (daemons, connector) = share_fleet(3, 2);
    let connector = connector.with_fault_plan(1, FaultPlan::kill_after_sends(4));
    let server = InferenceServer::start(
        "127.0.0.1:0",
        SessionId(940),
        &config,
        model,
        Arc::new(connector),
        InferenceServerOptions::default(),
    )
    .expect("inference server over the threshold fleet");
    let addr = server.local_addr();

    let inputs: Vec<Matrix<f64>> = (0..5)
        .map(|i| {
            Matrix::from_fn(1, data.feature_dim(), |_, c| {
                ((i * 7 + c) % 11) as f64 / 11.0
            })
        })
        .collect();
    let served = run_inference_client(addr, SessionId(940), ClientId(0), &config, 7100, &inputs, 2)
        .expect("serving completes despite the dead node");
    server.shutdown();
    for d in daemons {
        d.shutdown();
    }

    let ref_authority = AuthoritySession::new(&config);
    let params = ref_authority.public_params_for(&config);
    let mut encryptor = Client::from_keys(
        params.x_mpk.clone(),
        params.y_mpk.clone(),
        params.febo_mpk.clone(),
        params.fp,
        7100,
    );
    for (input, served_out) in inputs.iter().zip(&served) {
        let batch = encryptor.encrypt_features(input).expect("encrypt");
        let direct = reference
            .predict_encrypted(ref_authority.authority(), &batch)
            .expect("in-process predict");
        assert_eq!(
            served_out, &direct,
            "served prediction diverged from in-process"
        );
    }
}

/// A checkpoint cut under a *single* authority daemon resumes under a
/// 2-of-3 threshold service: the share replicas replay the dealer from
/// the session's authority seed, the ledger replay re-requests keys in
/// the original order, and the resumed session completes bit-identical
/// to its golden run.
#[test]
fn single_authority_checkpoint_resumes_under_threshold_service() {
    let _watchdog = watchdog("single_authority_checkpoint_resumes_under_threshold_service");
    let dir = tempdir("ckpt-resume");
    let data = clinic_dataset(24, 246);
    let config = resume_config(&data, 2, 2);
    let expected = golden(&config, &data);
    let session = SessionId(45);

    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())
        .expect("single authority binds");
    let options = ServerOptions {
        durability: Some(dir.clone()),
        checkpoint_every_steps: 2,
        ..ServerOptions::default()
    };
    let server_a = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        options.clone(),
    )
    .expect("server A binds");
    let addr = Arc::new(Mutex::new(server_a.local_addr()));

    let clients: Vec<_> = round_robin_shards(&data, 3, 2)
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let sm = client_sm(&config, i, shard);
            let config = config.clone();
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                run_client_resumable(
                    |_attempt| {
                        let deadline = std::time::Instant::now() + Duration::from_secs(30);
                        loop {
                            let target = *addr.lock();
                            match TcpTransport::connect(target, DEFAULT_MAX_FRAME) {
                                Ok(t) => {
                                    // Throttle every frame so the daemon
                                    // handoff lands mid-epoch.
                                    return Ok(FaultyTransport::new(
                                        t,
                                        FaultPlan {
                                            delay_every_sends: Some((1, Duration::from_millis(15))),
                                            ..FaultPlan::default()
                                        },
                                    ));
                                }
                                Err(e) => {
                                    if std::time::Instant::now() >= deadline {
                                        return Err(e.into());
                                    }
                                    std::thread::sleep(Duration::from_millis(25));
                                }
                            }
                        }
                    },
                    session,
                    sm,
                    &config,
                    8,
                )
            })
        })
        .collect();

    let store = CheckpointStore::new(dir.clone());
    wait_until("the session to cut a checkpoint under server A", || {
        store.path(session).exists()
    });
    server_a.shutdown();
    authority.shutdown();

    // Server B resumes the same durable state — but its authority is
    // now a 2-of-3 share-holder fleet instead of the single daemon.
    let (daemons, connector) = share_fleet(3, 2);
    let server_b =
        SessionServer::start("127.0.0.1:0", Arc::new(connector), options).expect("server B binds");
    *addr.lock() = server_b.local_addr();

    for client in clients {
        let summary = client
            .join()
            .expect("client thread")
            .expect("client completes across the authority handoff");
        assert_eq!(
            summary, expected,
            "resume under the threshold service diverged from golden"
        );
    }
    let resumed = server_b.resumed_sessions();
    assert_eq!(resumed.len(), 1, "the session resumed on B: {resumed:?}");
    assert!(
        resumed[0].from_checkpoint,
        "the single-authority checkpoint must anchor the threshold resume"
    );
    wait_until("the session to complete on server B", || {
        server_b.finished_sessions().len() == 1
    });
    assert_eq!(
        server_b.finished_sessions()[0],
        (session, SessionOutcomeKind::Completed)
    );
    server_b.shutdown();
    for d in daemons {
        d.shutdown();
    }
}

/// The `CRYPTONN_AUTHORITY` deployment-spec parser: quorum and node
/// addresses round-trip, malformed specs are typed errors.
#[test]
fn threshold_spec_parses_and_rejects_garbage() {
    let connector =
        ThresholdAuthority::from_spec("t=2@127.0.0.1:4001,127.0.0.1:4002,127.0.0.1:4003")
            .expect("a well-formed spec parses");
    assert_eq!(connector.setup().n(), 3);
    assert_eq!(connector.setup().t(), 2);
    for bad in [
        "127.0.0.1:4001",
        "t=two@127.0.0.1:4001",
        "t=2@127.0.0.1:4001",
        "t=0@127.0.0.1:4001,127.0.0.1:4002",
        "t=2@not-an-addr,127.0.0.1:4002",
    ] {
        assert!(
            matches!(
                ThresholdAuthority::from_spec(bad),
                Err(NetError::Malformed(_))
            ),
            "spec `{bad}` must be rejected"
        );
    }

    // The generic form accepts both deployments: a bare address means a
    // single remote authority, a `t=…@…` spec the threshold fleet.
    connector_from_spec("127.0.0.1:4001").expect("a bare address selects the single authority");
    connector_from_spec("t=1@127.0.0.1:4001").expect("a 1-of-1 spec selects the threshold fleet");
    assert!(matches!(
        connector_from_spec("not a spec"),
        Err(NetError::Malformed(_))
    ));
}
