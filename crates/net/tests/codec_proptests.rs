//! Equivalence proptests for the incremental codec under the reactor:
//! [`FrameDecoder`] fed arbitrary chunkings of a frame stream must
//! yield exactly the messages the blocking [`read_frame`] yields on the
//! same bytes, and [`OutboundQueue`] through arbitrary short writes
//! must emit exactly the byte stream a blocking `write_all` of the same
//! frames would. These are the invariants that make the reactor and
//! thread-per-connection transports interchangeable frame-for-frame.

use std::io::{ErrorKind, Write};

use proptest::prelude::*;

use cryptonn_net::{
    encode_frame, read_frame, FrameDecoder, NetMsg, OutboundQueue, WriteProgress, DEFAULT_MAX_FRAME,
};
use cryptonn_protocol::{ClientId, EpochBarrier, ModelDelta, TrainingStart, WireMessage};

fn msg_strategy() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        any::<u64>().prop_map(|seed| {
            NetMsg::Msg(WireMessage::Delta(ModelDelta {
                step: seed % 100_000,
                client: ClientId((seed >> 17) as u32 % 16),
                loss: ((seed % 2_000_001) as f64 / 1000.0) - 1000.0,
            }))
        }),
        (0u64..10_000).prop_map(|b| {
            NetMsg::Msg(WireMessage::Start(TrainingStart {
                batches_per_epoch: b,
            }))
        }),
        (0u32..100).prop_map(|e| NetMsg::Msg(WireMessage::Epoch(EpochBarrier { epoch: e }))),
        proptest::collection::vec(0u8..128, 0..64)
            .prop_map(|bytes| { NetMsg::Reject(String::from_utf8_lossy(&bytes).into_owned()) }),
    ]
}

/// Splits `wire` into chunks whose sizes cycle through `cuts`.
fn chop(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let n = cuts[i % cuts.len()].max(1).min(wire.len() - pos);
        chunks.push(wire[pos..pos + n].to_vec());
        pos += n;
        i += 1;
    }
    chunks
}

proptest! {
    /// Any frame sequence, chunked at any boundaries (including
    /// single-byte feeds), reassembles through [`FrameDecoder`] into
    /// exactly what the blocking codec reads from the same bytes, and
    /// the decoder ends at a clean frame boundary.
    #[test]
    fn incremental_decode_matches_blocking_codec(
        msgs in proptest::collection::vec(msg_strategy(), 1..6),
        cuts in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            wire.extend_from_slice(&encode_frame(msg, DEFAULT_MAX_FRAME).unwrap());
        }

        // Reference: the blocking reader over the contiguous stream.
        let mut cursor = &wire[..];
        let mut blocking = Vec::new();
        while let Some(msg) = read_frame::<_, NetMsg>(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            blocking.push(msg);
        }

        // Candidate: the incremental decoder over the chopped stream,
        // draining every complete frame after each chunk.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut incremental = Vec::new();
        for chunk in chop(&wire, &cuts) {
            dec.extend(&chunk).unwrap();
            while let Some(msg) = dec.next_msg::<NetMsg>().unwrap() {
                incremental.push(msg);
            }
        }

        prop_assert_eq!(&incremental, &blocking);
        prop_assert_eq!(incremental, msgs);
        prop_assert!(dec.at_boundary());
        prop_assert!(dec.eof_error().is_none());
    }

    /// Cutting the chunked stream anywhere inside a frame leaves the
    /// decoder reporting the same typed truncation (same missing-byte
    /// count) the blocking codec reports at that cut.
    #[test]
    fn truncation_taxonomy_matches_blocking_codec(
        msgs in proptest::collection::vec(msg_strategy(), 1..4),
        cuts in proptest::collection::vec(1usize..17, 1..8),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for msg in &msgs {
            wire.extend_from_slice(&encode_frame(msg, DEFAULT_MAX_FRAME).unwrap());
        }
        wire.truncate(((wire.len() as f64) * frac) as usize);

        let mut cursor = &wire[..];
        let blocking = loop {
            match read_frame::<_, NetMsg>(&mut cursor, DEFAULT_MAX_FRAME) {
                Ok(Some(_)) => {}
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };

        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for chunk in chop(&wire, &cuts) {
            dec.extend(&chunk).unwrap();
            while dec.next_msg::<NetMsg>().unwrap().is_some() {}
        }

        prop_assert_eq!(dec.eof_error(), blocking);
    }

    /// The outbound queue through arbitrary short writes (interleaved
    /// with `WouldBlock` stalls) emits exactly the contiguous byte
    /// stream a blocking `write_all` of the same frames produces.
    #[test]
    fn short_writes_match_blocking_byte_stream(
        msgs in proptest::collection::vec(msg_strategy(), 1..6),
        caps in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let frames: Vec<Vec<u8>> = msgs
            .iter()
            .map(|m| encode_frame(m, DEFAULT_MAX_FRAME).unwrap())
            .collect();
        let expected: Vec<u8> = frames.iter().flatten().copied().collect();

        let mut q = OutboundQueue::new(usize::MAX);
        for f in &frames {
            q.push(f.clone()).unwrap();
        }

        let mut out = Vec::new();
        let mut call = 0usize;
        // Drive write_to against a per-call-capped sink until drained;
        // every other call raises WouldBlock, as a real socket would
        // between readiness events.
        struct Sink<'a> {
            out: &'a mut Vec<u8>,
            caps: &'a [usize],
            call: &'a mut usize,
        }
        impl Write for Sink<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let i = *self.call;
                *self.call += 1;
                if i % 2 == 1 {
                    return Err(std::io::Error::from(ErrorKind::WouldBlock));
                }
                let n = self.caps[(i / 2) % self.caps.len()].max(1).min(buf.len());
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Sink { out: &mut out, caps: &caps, call: &mut call };
        loop {
            match q.write_to(&mut sink).unwrap() {
                WriteProgress::Drained => break,
                WriteProgress::Blocked => continue,
            }
        }

        prop_assert_eq!(&out, &expected);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.queued_bytes(), 0);

        // And the byte stream decodes back to the original messages
        // through the blocking reader — the full round trip.
        let mut cursor = &out[..];
        let mut decoded = Vec::new();
        while let Some(msg) = read_frame::<_, NetMsg>(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            decoded.push(msg);
        }
        prop_assert_eq!(decoded, msgs);
    }
}
