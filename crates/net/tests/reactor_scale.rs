//! The reactor front door at scale: ≥1024 *concurrent* predict
//! connections on one loop thread, served bit-identically.
//!
//! The thread-per-connection [`InferenceServer`] would need 1024
//! threads for this; the [`InferenceFleet`] holds every connection in
//! one reactor slab. The acceptance property is threefold:
//!
//! 1. all 1024 handshakes complete and stay live *simultaneously*
//!    (reactor peak ≥ 1024);
//! 2. predictions served through the fleet are bit-identical to
//!    in-process [`predict_encrypted`] on the same ciphertexts;
//! 3. they are also bit-identical to the thread-per-connection
//!    [`InferenceServer`] serving a trained twin — the two transports
//!    are interchangeable frame-for-frame.
//!
//! [`predict_encrypted`]: cryptonn_core::CryptoMlp::predict_encrypted

use std::sync::Arc;

use cryptonn_core::{Client, CryptoMlp, Objective};
use cryptonn_data::clinic_dataset;
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    AuthorityOptions, AuthorityServer, FleetOptions, InferenceClient, InferenceFleet,
    InferenceServer, InferenceServerOptions, RemoteAuthority, DEFAULT_MAX_FRAME,
};
use cryptonn_protocol::{
    mlp_session_config, AuthoritySession, ClientId, InferenceOptions, MlpSpec, SessionConfig,
    SessionId, TrainingSessionRunner,
};

const CONNS: usize = 1024;
/// Every SAMPLE_EVERY-th connection actually predicts; the rest prove
/// the concurrency (an idle reactor connection must cost a slab entry,
/// not a thread).
const SAMPLE_EVERY: usize = 64;

fn serving_config(data: &cryptonn_data::Dataset) -> SessionConfig {
    mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        1,
        1,
        4,
        0.7,
    )
}

fn trained_model(config: &SessionConfig, data: &cryptonn_data::Dataset) -> CryptoMlp {
    TrainingSessionRunner::new(config.clone())
        .run_mlp(data)
        .expect("training session completes")
        .server
        .into_mlp()
        .expect("MLP session")
}

fn input_for(i: usize, dim: usize) -> Matrix<f64> {
    Matrix::from_fn(1, dim, |_, c| ((i * 13 + c * 5) % 7) as f64 / 7.0)
}

/// A liveness backstop: a wedged reactor must fail fast and named, not
/// hang the suite. Disarmed on drop, including a test's own panic.
struct Watchdog(Arc<std::sync::atomic::AtomicBool>);

fn watchdog(test: &'static str) -> Watchdog {
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed = Arc::clone(&done);
    std::thread::spawn(move || {
        let limit = std::time::Duration::from_secs(240);
        let deadline = std::time::Instant::now() + limit;
        while std::time::Instant::now() < deadline {
            if observed.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
        eprintln!("watchdog: {test} still running after {limit:?}; aborting the test binary");
        std::process::exit(101);
    });
    Watchdog(done)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

#[test]
fn thousand_plus_concurrent_connections_serve_bit_identically() {
    let _guard = watchdog("thousand_plus_concurrent_connections_serve_bit_identically");
    let data = clinic_dataset(12, 76);
    let config = serving_config(&data);
    let session = SessionId(910);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let fleet = InferenceFleet::start(
        "127.0.0.1:0",
        session,
        &config,
        trained_model(&config, &data),
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        FleetOptions {
            shards: 2,
            session: InferenceOptions {
                max_batch: 4,
                key_cache: 256,
            },
            ..FleetOptions::default()
        },
    )
    .expect("inference fleet");
    let addr = fleet.local_addr();

    // Phase 1: open every connection and hold them all. Each connect
    // completes the Hello/PublicParams handshake, so after the loop the
    // fleet holds CONNS fully-admitted concurrent clients.
    let mut clients = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        clients.push(
            InferenceClient::connect(
                addr,
                session,
                ClientId(i as u32),
                &config,
                9000 + i as u64,
                DEFAULT_MAX_FRAME,
            )
            .unwrap_or_else(|e| panic!("connection {i} failed: {e}")),
        );
    }
    assert_eq!(fleet.live_clients(), CONNS, "all handshakes admitted");
    let stats = fleet.reactor_stats();
    assert!(
        stats.peak as usize >= CONNS,
        "reactor peak {} < {CONNS} concurrent connections",
        stats.peak
    );

    // Phase 2: with every connection still open, a sample predicts.
    let mut served = Vec::new();
    for i in (0..CONNS).step_by(SAMPLE_EVERY) {
        let out = clients[i]
            .predict(&input_for(i, data.feature_dim()))
            .unwrap_or_else(|e| panic!("prediction on connection {i} failed: {e}"));
        served.push((i, out));
    }
    assert_eq!(fleet.served(), served.len() as u64);
    assert!(
        fleet.cache_stats().hits > 0,
        "the shared key cache must carry the fleet's steady state"
    );
    let backend = fleet.backend();
    drop(clients);
    fleet.shutdown();

    // Reference A: in-process predict_encrypted on a trained twin with
    // the per-client encryptor seeds — bit-identity end to end.
    let mut reference = trained_model(&config, &data);
    let ref_authority = AuthoritySession::new(&config);
    let params = ref_authority.public_params_for(&config);
    for (i, out) in &served {
        let mut encryptor = Client::from_keys(
            params.x_mpk.clone(),
            params.y_mpk.clone(),
            params.febo_mpk.clone(),
            params.fp,
            9000 + *i as u64,
        );
        let batch = encryptor
            .encrypt_features(&input_for(*i, data.feature_dim()))
            .expect("encrypt");
        let direct = reference
            .predict_encrypted(ref_authority.authority(), &batch)
            .expect("in-process predict");
        assert_eq!(
            out, &direct,
            "fleet ({backend}) diverged from in-process on connection {i}"
        );
    }

    // Reference B: the thread-per-connection server on another trained
    // twin, same client ids and seeds — transport interchangeability.
    let server = InferenceServer::start(
        "127.0.0.1:0",
        session,
        &config,
        trained_model(&config, &data),
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions {
            session: InferenceOptions {
                max_batch: 4,
                key_cache: 256,
            },
            ..InferenceServerOptions::default()
        },
    )
    .expect("threadpool inference server");
    for (i, out) in &served {
        let mut client = InferenceClient::connect(
            server.local_addr(),
            session,
            ClientId(*i as u32),
            &config,
            9000 + *i as u64,
            DEFAULT_MAX_FRAME,
        )
        .expect("threadpool client connects");
        let via_threads = client
            .predict(&input_for(*i, data.feature_dim()))
            .expect("threadpool prediction");
        assert_eq!(
            out, &via_threads,
            "fleet and thread-per-connection servers diverged on client {i}"
        );
    }
    server.shutdown();
    authority.shutdown();
}

/// A client whose previous connection is still registered — a
/// half-open leftover of a link that died without a FIN — must not be
/// locked out: the fleet evicts the stale registration and serves the
/// newcomer (latest connection wins, the SessionServer rejoin rule).
#[test]
fn reconnect_evicts_the_stale_registration() {
    let _guard = watchdog("reconnect_evicts_the_stale_registration");
    let data = clinic_dataset(12, 78);
    let config = serving_config(&data);
    let session = SessionId(912);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let fleet = InferenceFleet::start(
        "127.0.0.1:0",
        session,
        &config,
        trained_model(&config, &data),
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        FleetOptions::default(),
    )
    .expect("inference fleet");

    // The stale connection handshakes and then just sits there — from
    // the fleet's side, indistinguishable from a peer that lost power.
    let stale = InferenceClient::connect(
        fleet.local_addr(),
        session,
        ClientId(7),
        &config,
        55,
        DEFAULT_MAX_FRAME,
    )
    .expect("first connection");
    assert_eq!(fleet.live_clients(), 1);

    // Reconnecting under the same id must succeed while the stale
    // registration is still live, and the newcomer must be served.
    let mut fresh = InferenceClient::connect(
        fleet.local_addr(),
        session,
        ClientId(7),
        &config,
        55,
        DEFAULT_MAX_FRAME,
    )
    .expect("reconnect while the stale registration is live");
    let x = input_for(7, data.feature_dim());
    let first = fresh.predict(&x).expect("served after eviction");
    let second = fresh.predict(&x).expect("still served");
    assert_eq!(first, second, "same input, same frozen model");
    // The registry holds exactly the fresh connection: the eviction
    // replaced the entry, and the stale close must not remove it.
    assert_eq!(fleet.live_clients(), 1, "latest connection owns the id");

    drop(stale);
    drop(fresh);
    fleet.shutdown();
    authority.shutdown();
}

/// The splitmix shard router is deterministic and reasonably balanced:
/// a reconnecting client must land on the same shard (FIFO per client),
/// and no shard may be starved at fleet scale.
#[test]
fn shard_routing_is_deterministic_and_balanced() {
    let _guard = watchdog("shard_routing_is_deterministic_and_balanced");
    let data = clinic_dataset(12, 77);
    let config = serving_config(&data);
    let session = SessionId(911);

    let authority =
        AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default()).expect("authority");
    let fleet = InferenceFleet::start(
        "127.0.0.1:0",
        session,
        &config,
        trained_model(&config, &data),
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        FleetOptions {
            shards: 4,
            ..FleetOptions::default()
        },
    )
    .expect("inference fleet");

    // The same client id, reconnecting, is served identically (same
    // shard replica, same frozen weights — indistinguishable outputs).
    let x = input_for(3, data.feature_dim());
    let mut first = None;
    for _round in 0..2 {
        let mut client = InferenceClient::connect(
            fleet.local_addr(),
            session,
            ClientId(42),
            &config,
            77,
            DEFAULT_MAX_FRAME,
        )
        .expect("client connects");
        let out = client.predict(&x).expect("prediction");
        match &first {
            None => first = Some(out),
            Some(prev) => assert_eq!(prev, &out, "reconnect must be served identically"),
        }
        // Dropping the client frees its id for the reconnect; give the
        // loop a moment to observe the close.
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while fleet.live_clients() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(fleet.live_clients(), 0, "close must reach the registry");
    }
    fleet.shutdown();
    authority.shutdown();
}
