//! The concurrent multi-session training server.
//!
//! [`SessionServer`] multiplexes many independent training sessions
//! over one listener:
//!
//! - **registry** — sessions are keyed by [`SessionId`]; the first
//!   client's `Hello` creates the session (fixing its config and
//!   opening the authority link), later clients must present the same
//!   config bit-for-bit;
//! - **thread-per-connection on a bounded pool** — each accepted
//!   connection is handled by a `cryptonn-parallel`
//!   [`ThreadPool`] worker; a saturated pool rejects new connections
//!   instead of spawning unboundedly;
//! - **bounded inbound queues** — every session has one
//!   `sync_channel` of events; when its worker is busy training, the
//!   connection readers block on the full queue, which backpressures
//!   straight down to the clients' sockets;
//! - **per-session worker** — one thread per live session pumps the
//!   shared [`ServerSession`] state machine (the same one the
//!   deterministic runner and the replayer drive) and broadcasts its
//!   outbound messages to every connected client;
//! - **failure isolation** — a client disconnecting mid-session (or a
//!   training error) fails *its* session: remaining members get a
//!   `Reject` frame and the session is removed; other sessions never
//!   observe it.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use cryptonn_parallel::{Parallelism, ThreadPool};
use cryptonn_protocol::{
    ClientId, ProtocolError, PublicParams, ServerSession, SessionConfig, SessionId, WireMessage,
};

use crate::authority::AuthorityConnector;
use crate::error::NetError;
use crate::framing::DEFAULT_MAX_FRAME;
use crate::transport::{FrameTx, NetMsg, Peer, TcpTransport, Transport};

/// Tuning for the session server.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bounded pool size for connection handlers (one per live client
    /// connection); a saturated pool rejects new connections.
    pub pool_threads: usize,
    /// Maximum simultaneously live sessions; beyond it, session
    /// creation is rejected.
    pub max_sessions: usize,
    /// Bounded depth of each session's inbound event queue.
    pub queue_depth: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
    /// Thread policy for the server-side decryption loops.
    pub parallelism: Parallelism,
    /// On-disk directory for the fingerprinted BSGS table cache; `None`
    /// rebuilds tables in memory per session.
    pub table_cache: Option<std::path::PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            pool_threads: 32,
            max_sessions: 8,
            queue_depth: 64,
            max_frame: DEFAULT_MAX_FRAME,
            parallelism: Parallelism::Serial,
            table_cache: None,
        }
    }
}

/// How one session ended, as observable from the server side.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcomeKind {
    /// Training completed; the summary was broadcast.
    Completed,
    /// The session failed (client loss, protocol violation, training
    /// error) with this reason.
    Failed(String),
}

// Events sit in a bounded queue; WireMessage payloads are heap-heavy
// (ciphertext batches), so box them rather than inflate every slot.
enum SessionEvent {
    Msg(ClientId, Box<WireMessage>),
    Gone(ClientId),
}

type Conns = Arc<Mutex<HashMap<ClientId, Box<dyn FrameTx>>>>;

struct SessionEntry {
    config: SessionConfig,
    params: PublicParams,
    inbound: SyncSender<SessionEvent>,
    conns: Conns,
}

/// A registry slot. `Creating` reserves the id (and pins the config)
/// while the founding connection opens the authority link *outside*
/// the registry lock, so one unreachable authority cannot stall every
/// other session's handshake.
enum Slot {
    Creating { config: SessionConfig },
    // Boxed: a handful of sessions exist, while the variant size gap
    // (PublicParams dominates SessionEntry) would otherwise inflate
    // every map slot.
    Ready(Box<SessionEntry>),
}

#[derive(Default)]
struct Registry {
    live: Mutex<HashMap<SessionId, Slot>>,
    finished: Mutex<Vec<(SessionId, SessionOutcomeKind)>>,
}

impl Registry {
    fn finish(&self, id: SessionId, outcome: SessionOutcomeKind) {
        self.live.lock().remove(&id);
        self.finished.lock().push((id, outcome));
    }
}

/// The concurrent multi-session training daemon. See the module docs
/// for the concurrency model.
pub struct SessionServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: Arc<Registry>,
}

impl SessionServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving sessions,
    /// reaching the key authority through `authority`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(
        addr: &str,
        authority: Arc<dyn AuthorityConnector>,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let pool = ThreadPool::new(options.pool_threads);
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // The stream rides in a shared slot so a refused
                    // job hands it back for the rejection frame.
                    let slot = Arc::new(Mutex::new(Some(stream)));
                    let job_slot = Arc::clone(&slot);
                    let registry = Arc::clone(&registry);
                    let authority = Arc::clone(&authority);
                    let conn_options = options.clone();
                    let accepted = pool.try_execute(move || {
                        if let Some(stream) = job_slot.lock().take() {
                            serve_client_conn(stream, &conn_options, &registry, authority.as_ref());
                        }
                    });
                    if !accepted {
                        // Saturated pool: refuse rather than queue — the
                        // client gets a typed rejection, not a hang.
                        if let Some(stream) = slot.lock().take() {
                            if let Ok(mut t) = TcpTransport::new(stream, options.max_frame) {
                                let _ = t.send(&NetMsg::Reject("server at capacity".into()));
                            }
                        }
                    }
                }
                // Dropping the pool joins in-flight connection handlers.
            })
        };
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            registry,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently live.
    pub fn live_sessions(&self) -> usize {
        self.registry.live.lock().len()
    }

    /// Outcomes of sessions that ended, in completion order.
    pub fn finished_sessions(&self) -> Vec<(SessionId, SessionOutcomeKind)> {
        self.registry.finished.lock().clone()
    }

    /// Stops accepting, tears down live connections, and waits for the
    /// accept loop (and through it, the handler pool) to drain.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Close every live connection so blocked readers unblock and
        // the pool can drain.
        for slot in self.registry.live.lock().values() {
            if let Slot::Ready(entry) = slot {
                for conn in entry.conns.lock().values_mut() {
                    conn.close();
                }
            }
        }
        // Poke the listener so the blocking accept wakes up.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn serve_client_conn(
    stream: TcpStream,
    options: &ServerOptions,
    registry: &Arc<Registry>,
    authority: &dyn AuthorityConnector,
) {
    let Ok(transport) = TcpTransport::new(stream, options.max_frame) else {
        return;
    };
    let (tx, mut rx) = Box::new(transport).split();
    let mut tx = Some(tx);
    let reject = |tx: &mut Option<Box<dyn FrameTx>>, why: String| {
        if let Some(mut tx) = tx.take() {
            let _ = tx.send(&NetMsg::Reject(why));
        }
    };

    let hello = match rx.recv() {
        Ok(Some(NetMsg::Hello(h))) => h,
        _ => {
            reject(&mut tx, "expected a Hello frame".into());
            return;
        }
    };
    let Peer::Client(client_id) = hello.peer else {
        reject(&mut tx, "only clients connect to the session server".into());
        return;
    };

    // Join or create the session. The registry lock is only ever held
    // for map operations — never across authority I/O or socket sends —
    // so one slow peer or an unreachable authority cannot stall other
    // sessions' handshakes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let (inbound, conns, params) = loop {
        let mut live = registry.live.lock();
        match live.get(&hello.session) {
            Some(Slot::Ready(entry)) => {
                if entry.config != hello.config {
                    drop(live);
                    reject(
                        &mut tx,
                        format!("{} already exists with a different config", hello.session),
                    );
                    return;
                }
                break (
                    entry.inbound.clone(),
                    Arc::clone(&entry.conns),
                    entry.params.clone(),
                );
            }
            Some(Slot::Creating { config }) => {
                // Another member is opening the authority link; check
                // the config now, then wait our turn off-lock.
                if *config != hello.config {
                    drop(live);
                    reject(
                        &mut tx,
                        format!("{} already exists with a different config", hello.session),
                    );
                    return;
                }
                drop(live);
                if std::time::Instant::now() >= deadline {
                    reject(&mut tx, "session setup timed out".into());
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            None => {
                if live.len() >= options.max_sessions {
                    drop(live);
                    reject(&mut tx, "server at session capacity".into());
                    return;
                }
                live.insert(
                    hello.session,
                    Slot::Creating {
                        config: hello.config.clone(),
                    },
                );
                drop(live);
                match create_session(hello.session, &hello.config, options, registry, authority) {
                    Ok(entry) => {
                        let handles = (
                            entry.inbound.clone(),
                            Arc::clone(&entry.conns),
                            entry.params.clone(),
                        );
                        registry
                            .live
                            .lock()
                            .insert(hello.session, Slot::Ready(Box::new(entry)));
                        break handles;
                    }
                    Err(e) => {
                        registry.live.lock().remove(&hello.session);
                        reject(&mut tx, format!("session setup failed: {e}"));
                        return;
                    }
                }
            }
        }
    };

    // Register this connection's writer and relay the session's public
    // parameters — under the per-session conns lock only.
    {
        let mut conns = conns.lock();
        if conns.contains_key(&client_id) {
            drop(conns);
            reject(
                &mut tx,
                format!("{client_id} is already connected to {}", hello.session),
            );
            return;
        }
        let mut tx = tx.take().expect("writer not yet consumed");
        if tx
            .send(&NetMsg::Msg(WireMessage::PublicParams(params)))
            .is_err()
        {
            return;
        }
        conns.insert(client_id, tx);
    }

    // If the worker died while we registered (a lost race with session
    // completion/failure), nobody will ever serve this connection —
    // tear it down rather than leave the client hanging.
    let cleanup = || {
        if let Some(mut conn) = conns.lock().remove(&client_id) {
            conn.close();
        }
    };

    // Pump frames into the session's bounded queue. A full queue blocks
    // here — TCP backpressure to this client — while the worker trains.
    loop {
        match rx.recv() {
            Ok(Some(NetMsg::Msg(msg))) => {
                if inbound
                    .send(SessionEvent::Msg(client_id, Box::new(msg)))
                    .is_err()
                {
                    // Worker gone: session completed or failed.
                    cleanup();
                    return;
                }
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                if inbound.send(SessionEvent::Gone(client_id)).is_err() {
                    cleanup();
                }
                return;
            }
        }
    }
}

fn create_session(
    id: SessionId,
    config: &SessionConfig,
    options: &ServerOptions,
    registry: &Arc<Registry>,
    authority: &dyn AuthorityConnector,
) -> Result<SessionEntry, NetError> {
    if config.clients == 0 {
        return Err(NetError::Protocol(ProtocolError::InvalidConfig(
            "zero clients".into(),
        )));
    }
    let (params, link) = authority.connect(id, config)?;
    let mut server = ServerSession::new(config, &params, link, options.parallelism);
    if let Some(dir) = &options.table_cache {
        server.attach_table_cache(dir.clone());
    }
    let (inbound_tx, inbound_rx) = std::sync::mpsc::sync_channel(options.queue_depth.max(1));
    let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
    {
        let conns = Arc::clone(&conns);
        let registry = Arc::clone(registry);
        std::thread::spawn(move || session_worker(id, server, inbound_rx, conns, registry));
    }
    Ok(SessionEntry {
        config: config.clone(),
        params,
        inbound: inbound_tx,
        conns,
    })
}

fn session_worker(
    id: SessionId,
    mut server: ServerSession,
    inbound: Receiver<SessionEvent>,
    conns: Conns,
    registry: Arc<Registry>,
) {
    let fail = |conns: &Conns, registry: &Registry, why: String| {
        // Lock ordering: handlers take the registry lock before a
        // session's conns lock, so never hold conns while finishing.
        {
            let mut conns = conns.lock();
            for conn in conns.values_mut() {
                let _ = conn.send(&NetMsg::Reject(why.clone()));
                conn.close();
            }
            conns.clear();
        }
        registry.finish(id, SessionOutcomeKind::Failed(why));
    };

    loop {
        let event = match inbound.recv() {
            Ok(event) => event,
            // Every connection handler is gone; if we had finished we
            // would have exited below, so this is an abandoned session.
            Err(_) => {
                registry.finish(
                    id,
                    SessionOutcomeKind::Failed("all clients disconnected".into()),
                );
                return;
            }
        };
        match event {
            SessionEvent::Gone(client) => {
                conns.lock().remove(&client);
                fail(
                    &conns,
                    &registry,
                    format!("{client} disconnected mid-session"),
                );
                return;
            }
            SessionEvent::Msg(client, msg) => match server.handle_message(&msg) {
                Ok(outs) => {
                    let mut finished = false;
                    {
                        let mut conns = conns.lock();
                        for ob in outs {
                            if matches!(ob.msg, WireMessage::Summary(_)) {
                                finished = true;
                            }
                            let frame = NetMsg::Msg(ob.msg);
                            conns.retain(|_, conn| conn.send(&frame).is_ok());
                        }
                        if finished {
                            // Orderly close: every member got the
                            // summary; tearing the connections down
                            // unblocks their handlers.
                            for conn in conns.values_mut() {
                                conn.close();
                            }
                            conns.clear();
                        }
                    }
                    if finished {
                        registry.finish(id, SessionOutcomeKind::Completed);
                        return;
                    }
                }
                Err(e) => {
                    fail(&conns, &registry, format!("{client}: {e}"));
                    return;
                }
            },
        }
    }
}
