//! The concurrent multi-session training server.
//!
//! [`SessionServer`] multiplexes many independent training sessions
//! over one listener:
//!
//! - **registry** — sessions are keyed by [`SessionId`]; the first
//!   client's `Hello` creates the session (fixing its config and
//!   opening the authority link), later clients must present the same
//!   config bit-for-bit;
//! - **thread-per-connection on a bounded pool** — each accepted
//!   connection is handled by a `cryptonn-parallel`
//!   [`ThreadPool`] worker; a saturated pool rejects new connections
//!   instead of spawning unboundedly;
//! - **bounded inbound queues** — every session has one
//!   `sync_channel` of events; when its worker is busy training, the
//!   connection readers block on the full queue, which backpressures
//!   straight down to the clients' sockets;
//! - **per-session worker** — one thread per live session (registered
//!   in a joinable [`WorkerSet`]) pumps the shared [`ServerSession`]
//!   state machine (the same one the deterministic runner and the
//!   replayer drive) and routes its outbound messages: broadcasts to
//!   every connected client, addressed frames (the `Resume` barrier)
//!   to their one recipient;
//! - **failure isolation** — under the default fail-fast policy a
//!   client disconnecting mid-session (or a training error) fails
//!   *its* session: remaining members get a `Reject` frame and the
//!   session is removed; other sessions never observe it;
//! - **churn tolerance** — under a resume policy a disconnect instead
//!   parks the session: the departed client's in-flight batches are
//!   dropped, a rejoining client is rewound to what the server
//!   actually consumed, and (with re-sharding enabled) a stalled
//!   schedule is re-cut onto the survivors;
//! - **durability** — with [`ServerOptions::durability`] set, every
//!   inbound event is appended to a per-session write-ahead JSONL
//!   ledger *before* it is processed, and the trained state is
//!   checkpointed at a step cadence (DESIGN.md §14). A restarted
//!   daemon finding a ledger for a resumable session restores the
//!   latest checkpoint, replays only the ledger suffix, and continues
//!   — bit-identical to a run that never crashed. Completed sessions
//!   delete their ledger and checkpoint; failed ones keep both.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use cryptonn_parallel::{Parallelism, ThreadPool, WorkerSet};
use cryptonn_protocol::{
    CheckpointStore, ClientId, Outbound, Party, ProtocolError, PublicParams, ServerSession,
    SessionConfig, SessionId, SessionSummary, WireMessage,
};

use crate::authority::AuthorityConnector;
use crate::error::NetError;
use crate::framing::DEFAULT_MAX_FRAME;
use crate::reactor::{ConnId, Reactor, ReactorApp, ReactorCtx, ReactorHandle, ReactorOptions};
use crate::transport::{
    mem_pair, FrameRx, FrameTx, Hello, MemTransport, NetMsg, Peer, TcpTransport, Transport,
};
use cryptonn_wire::WireFormat;

/// Which accept path a [`SessionServer`] runs.
///
/// The default resolves from the `CRYPTONN_TRANSPORT` environment
/// variable (`reactor` selects the reactor; anything else — including
/// unset — keeps the seed-compatible thread-per-connection pool), so
/// the whole test suite can be swept across both transports without
/// touching call sites, mirroring the `CRYPTONN_FORCE_SCALAR` kernel
/// selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Thread-per-connection on a bounded pool (the seed behavior).
    ThreadPool,
    /// One nonblocking reactor loop multiplexing every connection
    /// (DESIGN.md §15).
    Reactor,
}

impl Default for TransportMode {
    fn default() -> Self {
        match std::env::var("CRYPTONN_TRANSPORT").as_deref() {
            Ok("reactor") => TransportMode::Reactor,
            _ => TransportMode::ThreadPool,
        }
    }
}

/// Tuning for the session server.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bounded pool size for connection handlers (one per live client
    /// connection); a saturated pool rejects new connections.
    pub pool_threads: usize,
    /// Maximum simultaneously live sessions; beyond it, session
    /// creation is rejected.
    pub max_sessions: usize,
    /// Bounded depth of each session's inbound event queue.
    pub queue_depth: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
    /// Thread policy for the server-side decryption loops.
    pub parallelism: Parallelism,
    /// On-disk directory for the fingerprinted BSGS table cache; `None`
    /// rebuilds tables in memory per session.
    pub table_cache: Option<PathBuf>,
    /// On-disk directory for per-session write-ahead ledgers and
    /// checkpoints; `None` (the default) keeps sessions purely
    /// in-memory — a daemon restart loses them.
    pub durability: Option<PathBuf>,
    /// Checkpoint cadence in trained steps (clamped to at least one);
    /// meaningful only with [`durability`](Self::durability) set.
    /// Checkpoints are cut only at clean points (empty reorder buffer),
    /// so an eligible step may checkpoint slightly late.
    pub checkpoint_every_steps: u64,
    /// The accept path: thread-per-connection (the seed-compatible
    /// default) or the nonblocking reactor. The default follows the
    /// `CRYPTONN_TRANSPORT` environment variable.
    pub transport: TransportMode,
    /// The wire format this daemon *writes* for its durable state
    /// (ledger, checkpoints): seed JSON or the binary codec. The
    /// default follows the `CRYPTONN_WIRE` environment variable.
    /// Reading always sniffs, so a daemon restarted under the other
    /// format resumes old files and rewrites them in its own.
    /// (Connection traffic is unaffected — each connection mirrors its
    /// peer regardless of this knob.)
    pub wire: WireFormat,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            pool_threads: 32,
            max_sessions: 8,
            queue_depth: 64,
            max_frame: DEFAULT_MAX_FRAME,
            parallelism: Parallelism::Serial,
            table_cache: None,
            durability: None,
            checkpoint_every_steps: 8,
            transport: TransportMode::default(),
            wire: WireFormat::from_env(),
        }
    }
}

/// How one session ended, as observable from the server side.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcomeKind {
    /// Training completed; the summary was broadcast.
    Completed,
    /// The session failed (client loss, protocol violation, training
    /// error) with this reason.
    Failed(String),
}

/// How a restarted daemon brought one durable session back, as
/// reported by [`SessionServer::resumed_sessions`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResumedSession {
    /// The session that was resumed.
    pub session: SessionId,
    /// True if a valid checkpoint anchored the resume; false when the
    /// whole ledger was replayed from offset zero (no checkpoint on
    /// disk, or one the store rejected as corrupt).
    pub from_checkpoint: bool,
    /// Ledger events replayed (the suffix past the checkpoint's cut).
    pub replayed_events: u64,
    /// Wall-clock cost of the replay, in milliseconds.
    pub replay_ms: f64,
}

/// One line of a session's write-ahead ledger. Line 0 is always
/// `Config`; every later line is appended (and flushed) *before* the
/// event it records reaches the state machine, so a crash can lose at
/// most work the ledger already knows how to redo.
// One value exists at a time, on the stack, only long enough to be
// serialized (or replayed); boxing the heavy Msg variant would buy
// nothing and cost the move-in/borrow-back pattern in the worker.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LedgerLine {
    Config(SessionConfig),
    Msg(LedgerMsg),
    Gone(ClientId),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LedgerMsg {
    from: ClientId,
    msg: WireMessage,
}

// Events sit in a bounded queue; WireMessage payloads are heap-heavy
// (ciphertext batches), so box them rather than inflate every slot.
enum SessionEvent {
    Msg(ClientId, Box<WireMessage>),
    // The epoch names *which* connection died, so a stale notice
    // cannot evict a rejoined client's fresh writer.
    Gone(ClientId, u64),
    // Daemon shutdown: finish as failed (keeping durable state) and
    // exit, regardless of which connection handlers still hold queue
    // senders.
    Shutdown,
}

type Conns = Arc<Mutex<HashMap<ClientId, (u64, Box<dyn FrameTx>)>>>;

struct SessionEntry {
    config: SessionConfig,
    params: PublicParams,
    inbound: SyncSender<SessionEvent>,
    conns: Conns,
    conn_epoch: Arc<AtomicU64>,
}

/// A registry slot. `Creating` reserves the id (and pins the config)
/// while the founding connection opens the authority link *outside*
/// the registry lock, so one unreachable authority cannot stall every
/// other session's handshake.
enum Slot {
    Creating { config: SessionConfig },
    // Boxed: a handful of sessions exist, while the variant size gap
    // (PublicParams dominates SessionEntry) would otherwise inflate
    // every map slot.
    Ready(Box<SessionEntry>),
}

#[derive(Default)]
struct Registry {
    live: Mutex<HashMap<SessionId, Slot>>,
    finished: Mutex<Vec<(SessionId, SessionOutcomeKind)>>,
    /// Completed sessions keep their config and final summary: a member
    /// whose connection died in the final stretch (even on the summary
    /// frame itself) rejoins *after* the live entry is gone, and must be
    /// served the recorded verdict — not allowed to found a phantom
    /// second session under the spent id that waits forever for peers.
    served: Mutex<HashMap<SessionId, (SessionConfig, SessionSummary)>>,
    resumed: Mutex<Vec<ResumedSession>>,
}

impl Registry {
    fn finish(&self, id: SessionId, outcome: SessionOutcomeKind) {
        self.live.lock().remove(&id);
        self.finished.lock().push((id, outcome));
    }
}

/// The concurrent multi-session training daemon. See the module docs
/// for the concurrency model and the durability contract.
pub struct SessionServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    reactor: Option<Reactor>,
    registry: Arc<Registry>,
    workers: Arc<WorkerSet>,
    options: ServerOptions,
    authority: Arc<dyn AuthorityConnector>,
}

impl SessionServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving sessions,
    /// reaching the key authority through `authority`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(
        addr: &str,
        authority: Arc<dyn AuthorityConnector>,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let workers = Arc::new(WorkerSet::new());
        if options.transport == TransportMode::Reactor {
            let reactor_options = ReactorOptions {
                max_frame: options.max_frame,
                ..ReactorOptions::default()
            };
            let reactor = Reactor::start(listener, reactor_options, |handle| SessionApp {
                options: options.clone(),
                registry: Arc::clone(&registry),
                authority: Arc::clone(&authority),
                workers: Arc::clone(&workers),
                shutdown: Arc::clone(&shutdown),
                handle: handle.clone(),
                conn_state: HashMap::new(),
                waiting: Vec::new(),
                creation_errors: Arc::new(Mutex::new(HashMap::new())),
                pending_gone: Vec::new(),
            })?;
            return Ok(Self {
                addr,
                shutdown,
                accept: None,
                reactor: Some(reactor),
                registry,
                workers,
                options,
                authority,
            });
        }
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            let workers = Arc::clone(&workers);
            let authority = Arc::clone(&authority);
            let options = options.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(options.pool_threads);
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // The stream rides in a shared slot so a refused
                    // job hands it back for the rejection frame.
                    let slot = Arc::new(Mutex::new(Some(stream)));
                    let job_slot = Arc::clone(&slot);
                    let registry = Arc::clone(&registry);
                    let workers = Arc::clone(&workers);
                    let shutdown = Arc::clone(&shutdown);
                    let authority = Arc::clone(&authority);
                    let conn_options = options.clone();
                    let accepted = pool.try_execute(move || {
                        if let Some(stream) = job_slot.lock().take() {
                            let Ok(transport) = TcpTransport::new(stream, conn_options.max_frame)
                            else {
                                return;
                            };
                            let (tx, rx) = Box::new(transport).split();
                            serve_client_conn(
                                tx,
                                rx,
                                &conn_options,
                                &registry,
                                authority.as_ref(),
                                &workers,
                                &shutdown,
                            );
                        }
                    });
                    if !accepted {
                        // Saturated pool: refuse rather than queue — the
                        // client gets a typed rejection, not a hang.
                        if let Some(stream) = slot.lock().take() {
                            if let Ok(mut t) = TcpTransport::new(stream, options.max_frame) {
                                let _ = t.send(&NetMsg::Reject("server at capacity".into()));
                            }
                        }
                    }
                }
                // Dropping the pool joins in-flight connection handlers.
            })
        };
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            reactor: None,
            registry,
            workers,
            options,
            authority,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which accept path this daemon runs.
    pub fn transport(&self) -> TransportMode {
        self.options.transport
    }

    /// Sessions currently live.
    pub fn live_sessions(&self) -> usize {
        self.registry.live.lock().len()
    }

    /// Outcomes of sessions that ended, in completion order.
    pub fn finished_sessions(&self) -> Vec<(SessionId, SessionOutcomeKind)> {
        self.registry.finished.lock().clone()
    }

    /// Durable sessions this daemon brought back from their ledgers at
    /// creation time, with replay statistics.
    pub fn resumed_sessions(&self) -> Vec<ResumedSession> {
        self.registry.resumed.lock().clone()
    }

    /// Opens an in-memory connection to this server: the returned
    /// transport speaks to a dedicated handler thread running the
    /// *same* per-connection code as an accepted TCP socket (and
    /// moving the same encoded frames), so churn suites can exercise
    /// the full daemon without a network stack.
    pub fn connect_mem(&self) -> MemTransport {
        let (local, remote) = mem_pair(self.options.queue_depth.max(1), self.options.max_frame);
        let (tx, rx) = Box::new(remote).split();
        let registry = Arc::clone(&self.registry);
        let workers = Arc::clone(&self.workers);
        let shutdown = Arc::clone(&self.shutdown);
        let authority = Arc::clone(&self.authority);
        let options = self.options.clone();
        // Detached on purpose: the handler exits when the client half
        // drops, and must not hold shutdown hostage to a client that
        // never does.
        std::thread::spawn(move || {
            serve_client_conn(
                tx,
                rx,
                &options,
                &registry,
                authority.as_ref(),
                &workers,
                &shutdown,
            );
        });
        local
    }

    /// Stops accepting, tears down live connections, asks every
    /// session worker to finish (in-flight durable sessions land as
    /// `Failed` with their ledgers intact, ready for a restarted
    /// daemon), and joins the accept loop, the handler pool, and the
    /// session workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the live sessions out of the registry: their queue
        // senders drop with the entries, every connection closes (which
        // unblocks the socket readers), and an explicit Shutdown event
        // tells each worker to finish even while stray handler threads
        // still hold queue senders.
        let entries: Vec<Slot> = self.registry.live.lock().drain().map(|(_, s)| s).collect();
        for slot in &entries {
            if let Slot::Ready(entry) = slot {
                for (_, conn) in entry.conns.lock().values_mut() {
                    conn.close();
                }
            }
        }
        for slot in &entries {
            let Slot::Ready(entry) = slot else { continue };
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                match entry.inbound.try_send(SessionEvent::Shutdown) {
                    Ok(()) | Err(TrySendError::Disconnected(_)) => break,
                    // A full queue drains as the worker processes it.
                    Err(TrySendError::Full(_)) => {
                        if std::time::Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }
            }
        }
        // Poke the listener so the blocking accept wakes up.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(reactor) = self.reactor.take() {
            // The shutdown command is queued behind the connection
            // closes pushed above, so verdict frames still flush; the
            // app (and the queue senders it holds) drops on the loop
            // thread, starving any worker the Shutdown event missed.
            reactor.shutdown();
        }
        let _ = self.workers.join_all();
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        if self.accept.is_some() || self.reactor.is_some() {
            self.stop();
        }
    }
}

fn serve_client_conn(
    tx: Box<dyn FrameTx>,
    mut rx: Box<dyn FrameRx>,
    options: &ServerOptions,
    registry: &Arc<Registry>,
    authority: &dyn AuthorityConnector,
    workers: &Arc<WorkerSet>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut tx = Some(tx);
    let reject = |tx: &mut Option<Box<dyn FrameTx>>, why: String| {
        if let Some(mut tx) = tx.take() {
            let _ = tx.send(&NetMsg::Reject(why));
        }
    };

    let hello = match rx.recv() {
        Ok(Some(NetMsg::Hello(h))) => h,
        _ => {
            reject(&mut tx, "expected a Hello frame".into());
            return;
        }
    };
    let Peer::Client(client_id) = hello.peer else {
        reject(&mut tx, "only clients connect to the session server".into());
        return;
    };

    // A spent session id never comes back to life under this daemon.
    // A member whose last connection died in the final stretch may
    // rejoin after the live entry is gone: serve it the recorded
    // summary (delivery is idempotent) rather than found a phantom
    // session under the old id, and restate the verdict of a failed
    // one.
    {
        let served = registry.served.lock();
        if let Some((config, summary)) = served.get(&hello.session) {
            if *config != hello.config {
                let why = format!("{} already exists with a different config", hello.session);
                drop(served);
                reject(&mut tx, why);
                return;
            }
            let summary = summary.clone();
            drop(served);
            if let Some(mut tx) = tx.take() {
                if tx.send(&NetMsg::Msg(WireMessage::Summary(summary))).is_ok() {
                    // Drain until the client hangs up, so closing a TCP
                    // socket with unread inbound frames (the client's
                    // re-registration) cannot reset the summary out
                    // from under it.
                    while let Ok(Some(_)) = rx.recv() {}
                }
            }
            return;
        }
    }
    let failure = registry
        .finished
        .lock()
        .iter()
        .rev()
        .find_map(|(id, o)| match o {
            SessionOutcomeKind::Failed(why) if *id == hello.session => Some(why.clone()),
            _ => None,
        });
    if let Some(why) = failure {
        if let Some(mut tx) = tx.take() {
            if tx
                .send(&NetMsg::Reject(format!("{} failed: {why}", hello.session)))
                .is_ok()
            {
                // Drain until the client hangs up: its registration is
                // already in flight behind the Hello, and dropping the
                // reader with that frame unread kills the connection
                // before the verdict is read (same discipline as the
                // served-summary path above).
                while let Ok(Some(_)) = rx.recv() {}
            }
        }
        return;
    }

    // Join or create the session. The registry lock is only ever held
    // for map operations — never across authority I/O or socket sends —
    // so one slow peer or an unreachable authority cannot stall other
    // sessions' handshakes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let (inbound, conns, params, conn_epoch) = loop {
        let mut live = registry.live.lock();
        match live.get(&hello.session) {
            Some(Slot::Ready(entry)) => {
                if entry.config != hello.config {
                    drop(live);
                    reject(
                        &mut tx,
                        format!("{} already exists with a different config", hello.session),
                    );
                    return;
                }
                break (
                    entry.inbound.clone(),
                    Arc::clone(&entry.conns),
                    entry.params.clone(),
                    Arc::clone(&entry.conn_epoch),
                );
            }
            Some(Slot::Creating { config }) => {
                // Another member is opening the authority link; check
                // the config now, then wait our turn off-lock.
                if *config != hello.config {
                    drop(live);
                    reject(
                        &mut tx,
                        format!("{} already exists with a different config", hello.session),
                    );
                    return;
                }
                drop(live);
                if std::time::Instant::now() >= deadline {
                    reject(&mut tx, "session setup timed out".into());
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            None => {
                if live.len() >= options.max_sessions {
                    drop(live);
                    reject(&mut tx, "server at session capacity".into());
                    return;
                }
                live.insert(
                    hello.session,
                    Slot::Creating {
                        config: hello.config.clone(),
                    },
                );
                drop(live);
                match create_session(
                    hello.session,
                    &hello.config,
                    options,
                    registry,
                    authority,
                    workers,
                    shutdown,
                ) {
                    Ok(entry) => {
                        let handles = (
                            entry.inbound.clone(),
                            Arc::clone(&entry.conns),
                            entry.params.clone(),
                            Arc::clone(&entry.conn_epoch),
                        );
                        registry
                            .live
                            .lock()
                            .insert(hello.session, Slot::Ready(Box::new(entry)));
                        break handles;
                    }
                    Err(e) => {
                        registry.live.lock().remove(&hello.session);
                        reject(&mut tx, format!("session setup failed: {e}"));
                        return;
                    }
                }
            }
        }
    };

    // Register this connection's writer and relay the session's public
    // parameters — under the per-session conns lock only.
    let epoch = {
        let mut conns = conns.lock();
        if conns.contains_key(&client_id) {
            // A second connection for a registered client: a rejoin
            // under a resume policy (latest connection wins — the old
            // one is dead or dying, and its epoch-keyed Gone notice
            // cannot evict the new writer), a duplicate to refuse
            // otherwise.
            if !hello.config.policy.resumes() {
                drop(conns);
                reject(
                    &mut tx,
                    format!("{client_id} is already connected to {}", hello.session),
                );
                return;
            }
            if let Some((_, mut old)) = conns.remove(&client_id) {
                old.close();
            }
        }
        let epoch = conn_epoch.fetch_add(1, Ordering::SeqCst);
        let mut tx = tx.take().expect("writer not yet consumed");
        if tx
            .send(&NetMsg::Msg(WireMessage::PublicParams(params)))
            .is_err()
        {
            return;
        }
        conns.insert(client_id, (epoch, tx));
        epoch
    };

    // If the worker died while we registered (a lost race with session
    // completion/failure), nobody will ever serve this connection —
    // tear it down rather than leave the client hanging. Only our own
    // epoch's writer, though: a rejoined client may own the slot now.
    let cleanup = || {
        let mut conns = conns.lock();
        if conns.get(&client_id).is_some_and(|(e, _)| *e == epoch) {
            if let Some((_, mut conn)) = conns.remove(&client_id) {
                conn.close();
            }
        }
    };

    // Pump frames into the session's bounded queue. A full queue blocks
    // here — TCP backpressure to this client — while the worker trains.
    loop {
        match rx.recv() {
            Ok(Some(NetMsg::Msg(msg))) => {
                if inbound
                    .send(SessionEvent::Msg(client_id, Box::new(msg)))
                    .is_err()
                {
                    // Worker gone: session completed or failed.
                    cleanup();
                    return;
                }
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                if inbound.send(SessionEvent::Gone(client_id, epoch)).is_err() {
                    cleanup();
                }
                return;
            }
        }
    }
}

// ------------------------------------------------- reactor accept path

/// How long a connection may wait for its session's founding authority
/// handshake before being refused — the same window the threaded path
/// polls under.
const SETUP_DEADLINE: Duration = Duration::from_secs(30);

/// What the reactor knows about one established connection. Connections
/// without an entry are still pre-`Hello`.
enum ConnState {
    /// Registered into a live session: frames route to its worker.
    Established {
        client: ClientId,
        epoch: u64,
        inbound: SyncSender<SessionEvent>,
        conns: Conns,
    },
    /// Served a recorded summary; inbound frames are ignored until the
    /// peer hangs up (the reactor analogue of the threaded path's
    /// drain-until-close, which keeps an unread re-registration frame
    /// from resetting the summary).
    Draining,
}

/// A `Hello` parked while another member's creator thread opens the
/// authority link for its session.
struct WaitingConn {
    conn: ConnId,
    hello: Hello,
    since: Instant,
}

/// A `Gone` notice that found its session queue full; retried every
/// tick until delivered (it must not be lost — the worker's churn
/// accounting depends on it).
struct PendingGone {
    inbound: SyncSender<SessionEvent>,
    client: ClientId,
    epoch: u64,
    conns: Conns,
}

/// The session daemon as a [`ReactorApp`]: the event-driven twin of
/// [`serve_client_conn`]. Sessions, workers, ledgers, and routing are
/// the *same* code ([`create_session`] / [`session_worker`] /
/// [`route_outbound`]); only the connection pump differs — one loop
/// thread multiplexes every socket, session workers answer through
/// [`ReactorHandle::conn_tx`] writers, and a full session queue parks
/// the frame (suspending that connection's reads) instead of blocking
/// a reader thread.
struct SessionApp {
    options: ServerOptions,
    registry: Arc<Registry>,
    authority: Arc<dyn AuthorityConnector>,
    workers: Arc<WorkerSet>,
    shutdown: Arc<AtomicBool>,
    handle: ReactorHandle,
    conn_state: HashMap<ConnId, ConnState>,
    waiting: Vec<WaitingConn>,
    /// Reasons sessions failed to create, keyed for the waiters that
    /// will be refused with them. Entries are rare (an unreachable
    /// authority) and tiny; one may linger if every waiter died first.
    creation_errors: Arc<Mutex<HashMap<SessionId, String>>>,
    pending_gone: Vec<PendingGone>,
}

/// The per-session handles a connection registers against, cloned out
/// of a `Ready` slot.
type EntryHandles = (
    SyncSender<SessionEvent>,
    Conns,
    PublicParams,
    Arc<AtomicU64>,
);

fn entry_handles(entry: &SessionEntry) -> EntryHandles {
    (
        entry.inbound.clone(),
        Arc::clone(&entry.conns),
        entry.params.clone(),
        Arc::clone(&entry.conn_epoch),
    )
}

/// Sends the verdict, then drops the line once it flushes.
fn reject_conn(ctx: &mut ReactorCtx<'_>, conn: ConnId, why: String) {
    let _ = ctx.send(conn, &NetMsg::Reject(why));
    ctx.close_after_flush(conn);
}

impl SessionApp {
    /// The full `Hello` admission: served-summary replay, failed-session
    /// refusal, then join-or-create — the same checks, in the same
    /// order, with the same wording as the threaded path.
    fn handshake(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId, hello: Hello) {
        let Peer::Client(client) = hello.peer else {
            reject_conn(
                ctx,
                conn,
                "only clients connect to the session server".into(),
            );
            return;
        };
        if self.shutdown.load(Ordering::SeqCst) {
            reject_conn(ctx, conn, "server shutting down".into());
            return;
        }
        {
            let served = self.registry.served.lock();
            if let Some((config, summary)) = served.get(&hello.session) {
                if *config != hello.config {
                    let why = format!("{} already exists with a different config", hello.session);
                    drop(served);
                    reject_conn(ctx, conn, why);
                    return;
                }
                let summary = summary.clone();
                drop(served);
                if ctx
                    .send(conn, &NetMsg::Msg(WireMessage::Summary(summary)))
                    .is_ok()
                {
                    self.conn_state.insert(conn, ConnState::Draining);
                    ctx.set_handshaken(conn);
                } else {
                    ctx.close(conn);
                }
                return;
            }
        }
        let failure = self
            .registry
            .finished
            .lock()
            .iter()
            .rev()
            .find_map(|(id, o)| match o {
                SessionOutcomeKind::Failed(why) if *id == hello.session => Some(why.clone()),
                _ => None,
            });
        if let Some(why) = failure {
            reject_conn(ctx, conn, format!("{} failed: {why}", hello.session));
            return;
        }
        self.join_or_create(ctx, conn, client, hello, Instant::now());
    }

    fn join_or_create(
        &mut self,
        ctx: &mut ReactorCtx<'_>,
        conn: ConnId,
        client: ClientId,
        hello: Hello,
        since: Instant,
    ) {
        // Decide under the registry lock, act after: the lock is never
        // held across a send or a spawn.
        enum Step {
            Join(Box<EntryHandles>),
            Wait,
            Create,
            Refuse(String),
        }
        let step = {
            let mut live = self.registry.live.lock();
            match live.get(&hello.session) {
                Some(Slot::Ready(entry)) => {
                    if entry.config != hello.config {
                        Step::Refuse(format!(
                            "{} already exists with a different config",
                            hello.session
                        ))
                    } else {
                        Step::Join(Box::new(entry_handles(entry)))
                    }
                }
                Some(Slot::Creating { config }) => {
                    if *config != hello.config {
                        Step::Refuse(format!(
                            "{} already exists with a different config",
                            hello.session
                        ))
                    } else {
                        Step::Wait
                    }
                }
                None => {
                    if live.len() >= self.options.max_sessions {
                        Step::Refuse("server at session capacity".into())
                    } else {
                        live.insert(
                            hello.session,
                            Slot::Creating {
                                config: hello.config.clone(),
                            },
                        );
                        Step::Create
                    }
                }
            }
        };
        match step {
            Step::Join(handles) => self.register(ctx, conn, client, &hello, *handles),
            Step::Wait => self.waiting.push(WaitingConn { conn, hello, since }),
            Step::Create => {
                self.spawn_creator(hello.session, hello.config.clone());
                self.waiting.push(WaitingConn { conn, hello, since });
            }
            Step::Refuse(why) => reject_conn(ctx, conn, why),
        }
    }

    /// Opens the authority link and builds the session *off the loop
    /// thread* — [`create_session`] does real I/O and table builds, and
    /// one unreachable authority must not stall every connection. The
    /// founding `Hello` waits in [`Self::waiting`] meanwhile.
    fn spawn_creator(&self, session: SessionId, config: SessionConfig) {
        let registry = Arc::clone(&self.registry);
        let authority = Arc::clone(&self.authority);
        let workers = Arc::clone(&self.workers);
        let shutdown = Arc::clone(&self.shutdown);
        let options = self.options.clone();
        let errors = Arc::clone(&self.creation_errors);
        let handle = self.handle.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("{session}-create"))
            .spawn(move || {
                match create_session(
                    session,
                    &config,
                    &options,
                    &registry,
                    authority.as_ref(),
                    &workers,
                    &shutdown,
                ) {
                    Ok(entry) => {
                        // Decided under the registry lock against the
                        // flag `stop()` sets *before* draining: either
                        // the entry lands before the drain (and gets a
                        // Shutdown event), or it is dropped here — its
                        // queue sender with it, which ends the already-
                        // spawned worker. Never an orphan that would
                        // hang `join_all`.
                        let mut live = registry.live.lock();
                        if shutdown.load(Ordering::SeqCst) {
                            drop(entry);
                        } else {
                            live.insert(session, Slot::Ready(Box::new(entry)));
                        }
                    }
                    Err(e) => {
                        registry.live.lock().remove(&session);
                        errors.lock().insert(session, e.to_string());
                    }
                }
                // Wake the loop so parked founders settle now, not at
                // the next tick.
                handle.nudge();
            });
        if spawned.is_err() {
            self.registry.live.lock().remove(&session);
            self.creation_errors
                .lock()
                .insert(session, "could not spawn the session creator".into());
        }
    }

    /// Registers an admitted connection into a `Ready` session: epoch
    /// allocation, duplicate/rejoin policy, the `PublicParams` reply,
    /// and the writer insert — the mirror of the threaded epoch block.
    fn register(
        &mut self,
        ctx: &mut ReactorCtx<'_>,
        conn: ConnId,
        client: ClientId,
        hello: &Hello,
        handles: EntryHandles,
    ) {
        let (inbound, conns, params, conn_epoch) = handles;
        let epoch = {
            let mut conns_l = conns.lock();
            if conns_l.contains_key(&client) {
                if !hello.config.policy.resumes() {
                    drop(conns_l);
                    reject_conn(
                        ctx,
                        conn,
                        format!("{client} is already connected to {}", hello.session),
                    );
                    return;
                }
                // Rejoin: latest connection wins. The evicted writer's
                // close lands back here as an epoch-stale Gone, which
                // cannot evict this fresh registration.
                if let Some((_, mut old)) = conns_l.remove(&client) {
                    old.close();
                }
            }
            let epoch = conn_epoch.fetch_add(1, Ordering::SeqCst);
            if ctx
                .send(conn, &NetMsg::Msg(WireMessage::PublicParams(params)))
                .is_err()
            {
                // Outbound bound hit before registration: the conn is
                // already being torn down, and was never in `conns`.
                ctx.close(conn);
                return;
            }
            // Pin the writer to the format the client's Hello spoke:
            // session workers then answer each member of a mixed-format
            // session in its own dialect.
            let format = ctx.peer_format(conn);
            conns_l.insert(
                client,
                (
                    epoch,
                    Box::new(self.handle.conn_tx_fmt(conn, format)) as Box<dyn FrameTx>,
                ),
            );
            epoch
        };
        self.conn_state.insert(
            conn,
            ConnState::Established {
                client,
                epoch,
                inbound,
                conns,
            },
        );
        ctx.set_handshaken(conn);
    }

    /// Re-examines every parked `Hello` against the registry: runs on
    /// each tick and whenever a creator thread nudges the loop.
    fn settle_waiting(&mut self, ctx: &mut ReactorCtx<'_>) {
        if self.waiting.is_empty() {
            return;
        }
        enum Next {
            Join(Box<EntryHandles>),
            Wait,
            Gone,
        }
        for w in std::mem::take(&mut self.waiting) {
            let next = {
                let live = self.registry.live.lock();
                match live.get(&w.hello.session) {
                    Some(Slot::Ready(entry)) => Next::Join(Box::new(entry_handles(entry))),
                    Some(Slot::Creating { .. }) => Next::Wait,
                    None => Next::Gone,
                }
            };
            match next {
                Next::Join(handles) => {
                    let Peer::Client(client) = w.hello.peer else {
                        continue;
                    };
                    self.register(ctx, w.conn, client, &w.hello, *handles);
                }
                Next::Wait => {
                    if Instant::now() >= w.since + SETUP_DEADLINE {
                        reject_conn(ctx, w.conn, "session setup timed out".into());
                    } else {
                        self.waiting.push(w);
                    }
                }
                Next::Gone => {
                    let why = self.creation_errors.lock().remove(&w.hello.session);
                    if let Some(why) = why {
                        reject_conn(ctx, w.conn, format!("session setup failed: {why}"));
                    } else {
                        // The slot vanished for another reason — e.g.
                        // the session raced to completion while this
                        // member waited. Re-run the full admission,
                        // which serves recorded verdicts and (like the
                        // threaded wait loop) may found a fresh attempt.
                        self.handshake(ctx, w.conn, w.hello);
                    }
                }
            }
        }
    }

    fn flush_pending_gone(&mut self) {
        self.pending_gone.retain_mut(|g| {
            match g.inbound.try_send(SessionEvent::Gone(g.client, g.epoch)) {
                Ok(()) => false,
                Err(TrySendError::Full(_)) => true,
                Err(TrySendError::Disconnected(_)) => {
                    // Worker already gone; just drop our own epoch's
                    // writer if it is still registered.
                    let mut conns = g.conns.lock();
                    if conns.get(&g.client).is_some_and(|(e, _)| *e == g.epoch) {
                        if let Some((_, mut tx)) = conns.remove(&g.client) {
                            tx.close();
                        }
                    }
                    false
                }
            }
        });
    }
}

impl ReactorApp for SessionApp {
    fn on_frame(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId, msg: NetMsg) -> Option<NetMsg> {
        match self.conn_state.get(&conn) {
            None => match msg {
                NetMsg::Hello(hello) => {
                    self.handshake(ctx, conn, hello);
                    None
                }
                other => {
                    if self.waiting.iter().any(|w| w.conn == conn) {
                        // Clients fire their registration frames right
                        // behind the Hello without waiting for
                        // PublicParams; while session setup is in
                        // flight, park them (the threaded path simply
                        // has not read the socket yet).
                        Some(other)
                    } else {
                        reject_conn(ctx, conn, "expected a Hello frame".into());
                        None
                    }
                }
            },
            Some(ConnState::Draining) => None,
            Some(ConnState::Established {
                client, inbound, ..
            }) => {
                let client = *client;
                match msg {
                    NetMsg::Msg(m) => {
                        match inbound.try_send(SessionEvent::Msg(client, Box::new(m))) {
                            Ok(()) => None,
                            // Worker busy training: hand the frame back;
                            // the reactor parks it and stops reading this
                            // connection — the event-driven form of the
                            // threaded reader blocking on the full queue.
                            Err(TrySendError::Full(SessionEvent::Msg(_, m))) => {
                                Some(NetMsg::Msg(*m))
                            }
                            Err(TrySendError::Full(_)) => None,
                            Err(TrySendError::Disconnected(_)) => {
                                // Worker gone: session completed or
                                // failed. on_closed delivers the cleanup.
                                ctx.close(conn);
                                None
                            }
                        }
                    }
                    // Anything else mid-session mirrors the threaded
                    // reader: the connection is done.
                    _ => {
                        ctx.close(conn);
                        None
                    }
                }
            }
        }
    }

    fn on_closed(&mut self, _ctx: &mut ReactorCtx<'_>, conn: ConnId) {
        self.waiting.retain(|w| w.conn != conn);
        if let Some(ConnState::Established {
            client,
            epoch,
            inbound,
            conns,
        }) = self.conn_state.remove(&conn)
        {
            match inbound.try_send(SessionEvent::Gone(client, epoch)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => self.pending_gone.push(PendingGone {
                    inbound,
                    client,
                    epoch,
                    conns,
                }),
                Err(TrySendError::Disconnected(_)) => {
                    let mut conns_l = conns.lock();
                    if conns_l.get(&client).is_some_and(|(e, _)| *e == epoch) {
                        if let Some((_, mut tx)) = conns_l.remove(&client) {
                            tx.close();
                        }
                    }
                }
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut ReactorCtx<'_>) {
        self.settle_waiting(ctx);
        self.flush_pending_gone();
    }

    fn on_nudge(&mut self, ctx: &mut ReactorCtx<'_>) {
        self.settle_waiting(ctx);
        self.flush_pending_gone();
    }
}

/// The per-session durable state: the open write-ahead ledger and the
/// checkpoint plan.
struct Durability {
    ledger: std::fs::File,
    ledger_path: PathBuf,
    store: CheckpointStore,
    every_steps: u64,
    /// Event lines in the ledger (replayed + appended); the offset the
    /// next checkpoint records.
    events: u64,
    last_checkpoint_step: u64,
    /// The format appended records are written in (the whole file is
    /// one format — resume rewrites it in the daemon's configured one).
    wire: WireFormat,
}

impl Durability {
    fn append(&mut self, line: &LedgerLine) -> Result<(), NetError> {
        write_ledger_line(&mut self.ledger, line, self.wire)?;
        self.ledger.flush().map_err(NetError::from)?;
        self.events += 1;
        Ok(())
    }

    /// Drops the durable state of a *completed* session.
    fn discard(&self, id: SessionId) {
        let _ = std::fs::remove_file(&self.ledger_path);
        let _ = self.store.remove(id);
    }
}

fn ledger_path(dir: &Path, id: SessionId) -> PathBuf {
    dir.join(format!("{id}.ledger.jsonl"))
}

/// The file magic opening a binary (v2) ledger. A v1 ledger is bare
/// JSONL — its first byte is `{` — so the two are told apart by the
/// first eight bytes, exactly like frame payloads are sniffed.
const LEDGER_MAGIC_V2: [u8; 8] = *b"CNNWAL02";

/// Appends one ledger record in `wire` format: a JSON line (v1) or a
/// `u32`-LE-length-prefixed binary payload (v2).
fn write_ledger_line(
    file: &mut impl std::io::Write,
    line: &LedgerLine,
    wire: WireFormat,
) -> Result<(), NetError> {
    match wire {
        WireFormat::Json => {
            let json = serde_json::to_string(line)
                .map_err(|e| NetError::Io(format!("ledger encode failed: {e}")))?;
            writeln!(file, "{json}").map_err(NetError::from)
        }
        WireFormat::Binary => {
            let payload = cryptonn_wire::to_vec(line)
                .map_err(|e| NetError::Io(format!("ledger encode failed: {e}")))?;
            let len = u32::try_from(payload.len())
                .map_err(|_| NetError::Io("ledger record overflows its length prefix".into()))?;
            file.write_all(&len.to_le_bytes())?;
            file.write_all(&payload).map_err(NetError::from)
        }
    }
}

/// Reads a session ledger back: sniffs the schema by the leading
/// bytes, checks the `Config` header against the presented config, and
/// returns the event lines. A torn final record (a crash mid-append)
/// is dropped; torn or alien content anywhere else — or a mismatched
/// config — rejects the whole ledger (`None`).
fn read_ledger(path: &Path, config: &SessionConfig) -> Option<Vec<LedgerLine>> {
    let bytes = std::fs::read(path).ok()?;
    let lines = if bytes.starts_with(&LEDGER_MAGIC_V2) {
        parse_ledger_v2(&bytes[LEDGER_MAGIC_V2.len()..])?
    } else {
        parse_ledger_v1(&bytes)?
    };
    let (first, rest) = lines.split_first()?;
    match first {
        LedgerLine::Config(c) if *c == *config => {}
        _ => return None,
    }
    if rest.iter().any(|l| matches!(l, LedgerLine::Config(_))) {
        return None;
    }
    Some(rest.to_vec())
}

/// The seed JSONL schema: one JSON record per line.
fn parse_ledger_v1(bytes: &[u8]) -> Option<Vec<LedgerLine>> {
    let text = std::str::from_utf8(bytes).ok()?;
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<LedgerLine>(line) {
            Ok(event) => out.push(event),
            Err(_) if i + 1 == lines.len() => break, // torn tail
            Err(_) => return None,
        }
    }
    Some(out)
}

/// The binary schema (past the file magic): `u32`-LE-length-prefixed
/// binary payloads, back to back.
fn parse_ledger_v2(mut rest: &[u8]) -> Option<Vec<LedgerLine>> {
    let mut out = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 4 {
            break; // torn length prefix at the tail
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let Some(record) = rest.get(4..4 + len) else {
            break; // torn payload at the tail
        };
        match cryptonn_wire::from_slice::<LedgerLine>(record) {
            Ok(line) => out.push(line),
            // A record that frames whole but does not decode is a torn
            // tail only in final position; anywhere else the file is
            // alien.
            Err(_) if rest.len() == 4 + len => break,
            Err(_) => return None,
        }
        rest = &rest[4 + len..];
    }
    Some(out)
}

/// Rebuilds a mid-run server from its durable state: the latest valid
/// checkpoint (if any) plus a replay of the ledger events past its cut.
fn replay_ledger(
    id: SessionId,
    config: &SessionConfig,
    options: &ServerOptions,
    authority: &dyn AuthorityConnector,
    store: &CheckpointStore,
    events: &[LedgerLine],
) -> Result<(ServerSession, PublicParams, bool, u64), NetError> {
    let (params, link) = authority.connect(id, config)?;
    let (mut server, offset, from_checkpoint) = match store.load(id, config) {
        Ok(ckpt) => {
            let offset = (ckpt.transcript_offset as usize).min(events.len());
            let server = ServerSession::restore(config, &params, link, options.parallelism, &ckpt)?;
            (server, offset, true)
        }
        // Missing or rejected (corrupt, wrong fingerprint, stale
        // schema): the ledger alone still reconstructs the session.
        Err(_) => (
            ServerSession::new(config, &params, link, options.parallelism),
            0,
            false,
        ),
    };
    if let Some(dir) = &options.table_cache {
        server.attach_table_cache(dir.clone());
    }
    let mut replayed = 0u64;
    for line in &events[offset..] {
        match line {
            LedgerLine::Config(_) => {}
            LedgerLine::Msg(m) => match server.handle_message(&m.msg) {
                Ok(_) => {}
                // A write-ahead ledger legitimately holds duplicates: a
                // batch parked in the reorder buffer at a crash was
                // re-sent by its rewound owner after the previous
                // resume. The state machine is unchanged on this error,
                // so skipping the stale copy is sound.
                Err(ProtocolError::OutOfOrder { .. }) => {}
                Err(e) => return Err(e.into()),
            },
            LedgerLine::Gone(client) => {
                // Replayed so a re-shard the dying daemon already cut
                // is re-cut identically.
                server.client_gone(*client)?;
            }
        }
        replayed += 1;
    }
    // Batches the replay parked in the reorder buffer were never
    // trained: the reconnecting clients are rewound to `delivered` and
    // will resend them.
    server.purge_pending();
    server.mark_all_disconnected();
    Ok((server, params, from_checkpoint, replayed))
}

fn create_session(
    id: SessionId,
    config: &SessionConfig,
    options: &ServerOptions,
    registry: &Arc<Registry>,
    authority: &dyn AuthorityConnector,
    workers: &Arc<WorkerSet>,
    shutdown: &Arc<AtomicBool>,
) -> Result<SessionEntry, NetError> {
    if config.clients == 0 {
        return Err(NetError::Protocol(ProtocolError::InvalidConfig(
            "zero clients".into(),
        )));
    }
    let fresh = |params: &PublicParams,
                 link: Box<dyn cryptonn_protocol::AuthorityChannel>|
     -> ServerSession {
        let mut server = ServerSession::new(config, params, link, options.parallelism);
        if let Some(dir) = &options.table_cache {
            server.attach_table_cache(dir.clone());
        }
        server
    };
    let (server, params, durability) = match &options.durability {
        None => {
            let (params, link) = authority.connect(id, config)?;
            let server = fresh(&params, link);
            (server, params, None)
        }
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let store = CheckpointStore::new(dir.clone()).with_format(options.wire);
            let path = ledger_path(dir, id);
            let recorded = if config.policy.resumes() {
                read_ledger(&path, config)
            } else {
                None
            };
            let (server, params, events) = match recorded {
                Some(events) => {
                    let start = std::time::Instant::now();
                    let (server, params, from_checkpoint, replayed) =
                        replay_ledger(id, config, options, authority, &store, &events)?;
                    registry.resumed.lock().push(ResumedSession {
                        session: id,
                        from_checkpoint,
                        replayed_events: replayed,
                        replay_ms: start.elapsed().as_secs_f64() * 1e3,
                    });
                    (server, params, events)
                }
                None => {
                    // No usable history: any stale files under this id
                    // belong to an unresumable or alien session.
                    let _ = std::fs::remove_file(&path);
                    let _ = store.remove(id);
                    let (params, link) = authority.connect(id, config)?;
                    let server = fresh(&params, link);
                    (server, params, Vec::new())
                }
            };
            // Rewrite the ledger from its parsed form: identical
            // content, but a torn tail record (if any) is gone, so
            // appends always start on a fresh record — and the rewrite
            // lands in *this* daemon's configured format, which is how
            // a v1 JSONL ledger migrates to binary (and back) across a
            // restart with no translation step.
            let mut file = std::fs::File::create(&path)?;
            if options.wire == WireFormat::Binary {
                file.write_all(&LEDGER_MAGIC_V2)?;
            }
            write_ledger_line(&mut file, &LedgerLine::Config(config.clone()), options.wire)?;
            for line in &events {
                write_ledger_line(&mut file, line, options.wire)?;
            }
            file.flush()?;
            let durability = Durability {
                ledger: file,
                ledger_path: path,
                store,
                every_steps: options.checkpoint_every_steps.max(1),
                events: events.len() as u64,
                last_checkpoint_step: server.steps(),
                wire: options.wire,
            };
            (server, params, Some(durability))
        }
    };
    let (inbound_tx, inbound_rx) = std::sync::mpsc::sync_channel(options.queue_depth.max(1));
    let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
    let ctx = WorkerCtx {
        id,
        config: config.clone(),
        conns: Arc::clone(&conns),
        registry: Arc::clone(registry),
        shutdown: Arc::clone(shutdown),
        durability,
    };
    workers.spawn(&format!("{id}-worker"), move || {
        session_worker(ctx, server, inbound_rx);
    });
    Ok(SessionEntry {
        config: config.clone(),
        params,
        inbound: inbound_tx,
        conns,
        conn_epoch: Arc::new(AtomicU64::new(0)),
    })
}

/// Everything a session worker owns besides the state machine and its
/// inbound queue.
struct WorkerCtx {
    id: SessionId,
    config: SessionConfig,
    conns: Conns,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    durability: Option<Durability>,
}

impl WorkerCtx {
    fn append(&mut self, line: &LedgerLine) -> Result<(), NetError> {
        match &mut self.durability {
            Some(d) => d.append(line),
            None => Ok(()),
        }
    }

    /// Cuts a checkpoint when the cadence is due and the state machine
    /// sits at a clean point (empty reorder buffer, so checkpoint +
    /// ledger suffix reconstructs the exact consumed stream).
    /// Checkpointing is best-effort: a failed save only costs a longer
    /// replay later.
    fn maybe_checkpoint(&mut self, server: &ServerSession) {
        let Some(d) = &mut self.durability else {
            return;
        };
        if server.steps() < d.last_checkpoint_step + d.every_steps
            || server.pending_batches() != 0
            || server.is_finished()
        {
            return;
        }
        if let Ok(ckpt) = server.checkpoint(d.events) {
            if d.store.save(self.id, &self.config, &ckpt).is_ok() {
                d.last_checkpoint_step = server.steps();
            }
        }
    }

    fn finish(&self, outcome: SessionOutcomeKind) {
        // A failed durable session keeps its ledger and checkpoint: a
        // restarted daemon resumes it from there.
        if outcome == SessionOutcomeKind::Completed {
            if let Some(d) = &self.durability {
                d.discard(self.id);
            }
        }
        self.registry.finish(self.id, outcome);
    }

    fn fail(&self, why: String) {
        // Lock ordering: handlers take the registry lock before a
        // session's conns lock, so never hold conns while finishing.
        {
            let mut conns = self.conns.lock();
            for (_, conn) in conns.values_mut() {
                let _ = conn.send(&NetMsg::Reject(why.clone()));
                conn.close();
            }
            conns.clear();
        }
        self.finish(SessionOutcomeKind::Failed(why));
    }
}

/// Delivers a batch of outbound messages: addressed frames to their
/// one recipient, everything else broadcast to every connected client;
/// a writer whose send fails is dropped (its reader will report
/// `Gone`). Returns true once the final summary went out, after
/// closing every connection.
fn route_outbound(conns: &Conns, outs: Vec<Outbound>) -> bool {
    let mut finished = false;
    let mut conns = conns.lock();
    for ob in outs {
        if matches!(ob.msg, WireMessage::Summary(_)) {
            finished = true;
        }
        let frame = NetMsg::Msg(ob.msg);
        match ob.to {
            Party::Client(i) => {
                let id = ClientId(i);
                let dead = match conns.get_mut(&id) {
                    Some((_, conn)) => conn.send(&frame).is_err(),
                    None => false,
                };
                if dead {
                    if let Some((_, mut conn)) = conns.remove(&id) {
                        conn.close();
                    }
                }
            }
            _ => conns.retain(|_, (_, conn)| conn.send(&frame).is_ok()),
        }
    }
    if finished {
        // Orderly close: every member got the summary; tearing the
        // connections down unblocks their handlers.
        for (_, conn) in conns.values_mut() {
            conn.close();
        }
        conns.clear();
    }
    finished
}

fn session_worker(mut ctx: WorkerCtx, mut server: ServerSession, inbound: Receiver<SessionEvent>) {
    loop {
        let event = match inbound.recv() {
            Ok(event) => event,
            // Every queue sender is gone; if we had finished we would
            // have exited below, so this session was abandoned (or the
            // daemon is going down and already drained the registry).
            Err(_) => {
                let why = if ctx.shutdown.load(Ordering::SeqCst) {
                    "server shut down mid-session"
                } else {
                    "all clients disconnected"
                };
                ctx.finish(SessionOutcomeKind::Failed(why.into()));
                return;
            }
        };
        let result = match event {
            SessionEvent::Shutdown => {
                {
                    let mut conns = ctx.conns.lock();
                    for (_, conn) in conns.values_mut() {
                        conn.close();
                    }
                    conns.clear();
                }
                ctx.finish(SessionOutcomeKind::Failed(
                    "server shut down mid-session".into(),
                ));
                return;
            }
            SessionEvent::Gone(client, epoch) => {
                {
                    let mut conns = ctx.conns.lock();
                    match conns.get(&client) {
                        // The client already rejoined on a newer
                        // connection: this notice is about a corpse,
                        // not the member — dropping it (unledgered) is
                        // what keeps a slow old handler from marking a
                        // live rejoined client disconnected and
                        // stalling the schedule forever.
                        Some((e, _)) if *e != epoch => continue,
                        Some(_) => {
                            conns.remove(&client);
                        }
                        // No writer left (a failed send already evicted
                        // it): the disconnect itself is still real.
                        None => {}
                    }
                }
                if let Err(e) = ctx.append(&LedgerLine::Gone(client)) {
                    ctx.fail(format!("durability failure: {e}"));
                    return;
                }
                server.client_gone(client)
            }
            SessionEvent::Msg(client, msg) => {
                // The ledger line owns the message (no clone of the
                // heavy ciphertext payload); the state machine borrows
                // it back out.
                let line = LedgerLine::Msg(LedgerMsg {
                    from: client,
                    msg: *msg,
                });
                if let Err(e) = ctx.append(&line) {
                    ctx.fail(format!("durability failure: {e}"));
                    return;
                }
                let LedgerLine::Msg(m) = &line else {
                    unreachable!("constructed as Msg above")
                };
                server.handle_message(&m.msg)
            }
        };
        match result {
            Ok(outs) => {
                // Record the summary *before* the live entry goes away:
                // from the instant the session leaves the registry, a
                // member rejoining after a dropped final frame is
                // answered from this record.
                if let Some(summary) = outs.iter().find_map(|ob| match &ob.msg {
                    WireMessage::Summary(s) => Some(s.clone()),
                    _ => None,
                }) {
                    ctx.registry
                        .served
                        .lock()
                        .insert(ctx.id, (ctx.config.clone(), summary));
                }
                if route_outbound(&ctx.conns, outs) {
                    ctx.finish(SessionOutcomeKind::Completed);
                    return;
                }
                ctx.maybe_checkpoint(&server);
            }
            Err(e) => {
                // Under fail-fast a disconnect lands here as the
                // seed-behavior "disconnected mid-session" transport
                // error; training and protocol violations likewise.
                ctx.fail(format!("{e}"));
                return;
            }
        }
    }
}
