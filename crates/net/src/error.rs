//! Error type of the transport layer.

use core::fmt;

use cryptonn_protocol::ProtocolError;

/// Errors from framed wire I/O, the session daemons, and the client
/// drivers.
///
/// Defensive decoding is typed: an oversized frame, a truncated frame,
/// and a garbage payload are distinct variants, so tests (and
/// operators) can tell an attack-shaped input from a lost connection
/// without string matching — and none of them ever panics the peer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// Socket/channel I/O failed.
    Io(String),
    /// A frame header announced a payload beyond the configured cap.
    /// The stream is poisoned (the next bytes are mid-payload), so the
    /// connection must be dropped.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// Bytes the frame still owed.
        missing: usize,
    },
    /// A complete frame whose payload does not decode.
    Malformed(String),
    /// The peer sent a well-formed frame of the wrong kind for this
    /// point in the exchange (e.g. a second `Hello`).
    UnexpectedFrame(&'static str),
    /// The peer refused the exchange (capacity, config mismatch, a
    /// failed session).
    Rejected(String),
    /// The peer closed the connection before the exchange completed.
    Disconnected,
    /// A deadline elapsed: connecting to, or waiting on, a peer that
    /// never answered. Distinct from [`NetError::Io`] so a driver can
    /// retry a dead peer without string-matching.
    Timeout {
        /// What the deadline covered.
        during: &'static str,
    },
    /// An outbound queue hit its byte bound — the peer is not draining
    /// its socket, and buffering further would let one slow consumer
    /// hold the daemon's memory hostage.
    Backpressure {
        /// Bytes already queued.
        queued: usize,
        /// The configured bound.
        max: usize,
    },
    /// Too few threshold share-holders are reachable to form a quorum:
    /// a t-of-n authority connect (or a mid-run derivation) could not
    /// gather `need` live nodes. Fails closed — no partial quorum ever
    /// derives a key.
    Quorum {
        /// Live share-holders found.
        have: usize,
        /// The quorum threshold `t`.
        need: usize,
    },
    /// The session state machine under this transport failed.
    Protocol(ProtocolError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O failed: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Truncated { missing } => {
                write!(f, "stream ended inside a frame ({missing} bytes missing)")
            }
            NetError::Malformed(e) => write!(f, "frame payload does not decode: {e}"),
            NetError::UnexpectedFrame(kind) => {
                write!(f, "unexpected frame at this point in the exchange: {kind}")
            }
            NetError::Rejected(why) => write!(f, "peer rejected the exchange: {why}"),
            NetError::Disconnected => write!(f, "peer closed the connection mid-exchange"),
            NetError::Timeout { during } => {
                write!(f, "deadline elapsed during {during}")
            }
            NetError::Backpressure { queued, max } => {
                write!(
                    f,
                    "outbound queue at {queued} bytes exceeds the {max}-byte bound"
                )
            }
            NetError::Quorum { have, need } => write!(
                f,
                "threshold quorum unreachable: {have} share-holders live, need {need}"
            ),
            NetError::Protocol(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // An elapsed socket deadline. This generic conversion
            // cannot know which direction the deadline covered, so the
            // label stays neutral. `WouldBlock` is deliberately NOT
            // mapped here: on a nonblocking fd it means "retry", and
            // only a blocking read under SO_RCVTIMEO may interpret it
            // as a timeout — the read path does so explicitly
            // (`framing::read_exact_or_eof`).
            std::io::ErrorKind::TimedOut => NetError::Timeout {
                during: "socket I/O",
            },
            // A peer that closed its end mid-exchange surfaces as EOF
            // on reads but as EPIPE/ECONNRESET on writes still in
            // flight — same event, same variant.
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted => NetError::Disconnected,
            _ => NetError::Io(e.to_string()),
        }
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}
