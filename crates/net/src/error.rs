//! Error type of the transport layer.

use core::fmt;

use cryptonn_protocol::ProtocolError;

/// Errors from framed wire I/O, the session daemons, and the client
/// drivers.
///
/// Defensive decoding is typed: an oversized frame, a truncated frame,
/// and a garbage payload are distinct variants, so tests (and
/// operators) can tell an attack-shaped input from a lost connection
/// without string matching — and none of them ever panics the peer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// Socket/channel I/O failed.
    Io(String),
    /// A frame header announced a payload beyond the configured cap.
    /// The stream is poisoned (the next bytes are mid-payload), so the
    /// connection must be dropped.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// Bytes the frame still owed.
        missing: usize,
    },
    /// A complete frame whose payload does not decode.
    Malformed(String),
    /// The peer sent a well-formed frame of the wrong kind for this
    /// point in the exchange (e.g. a second `Hello`).
    UnexpectedFrame(&'static str),
    /// The peer refused the exchange (capacity, config mismatch, a
    /// failed session).
    Rejected(String),
    /// The peer closed the connection before the exchange completed.
    Disconnected,
    /// The session state machine under this transport failed.
    Protocol(ProtocolError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O failed: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Truncated { missing } => {
                write!(f, "stream ended inside a frame ({missing} bytes missing)")
            }
            NetError::Malformed(e) => write!(f, "frame payload does not decode: {e}"),
            NetError::UnexpectedFrame(kind) => {
                write!(f, "unexpected frame at this point in the exchange: {kind}")
            }
            NetError::Rejected(why) => write!(f, "peer rejected the exchange: {why}"),
            NetError::Disconnected => write!(f, "peer closed the connection mid-exchange"),
            NetError::Protocol(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}
