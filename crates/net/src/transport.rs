//! The transport abstraction: framed, bidirectional, splittable
//! message pipes.
//!
//! A [`Transport`] carries [`NetMsg`] frames — the session-protocol
//! alphabet plus the connection-scoped handshake — over either a real
//! `std::net` TCP stream ([`TcpTransport`]) or an in-memory channel
//! pair ([`MemTransport`], from [`mem_pair`]). Both run the *same*
//! length-prefixed codec from [`framing`](crate::framing): the
//! in-memory pair moves encoded frames, not Rust values, so every test
//! over it exercises the exact bytes TCP would carry.
//!
//! **Wire-format negotiation** rides on the payloads themselves: each
//! connection owns a [`FormatCell`] shared by its send and receive
//! halves; the receiver records the format of every arriving frame
//! (sniffed by its first byte) and the sender encodes in whatever the
//! cell holds. A connection *initiator* starts the cell at the process
//! default ([`WireFormat::from_env`], i.e. `CRYPTONN_WIRE`), so a
//! binary-opted client speaks binary from its `Hello` on; an
//! *accepting* side's first send always follows a received `Hello`, so
//! it mirrors each client per-connection — mixed-format clients on one
//! daemon, no handshake field (DESIGN.md §16).

use std::io::BufReader;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Duration;

use cryptonn_wire::{FormatCell, WireFormat};
use serde::{Deserialize, Serialize};

use cryptonn_protocol::{ClientId, SessionConfig, SessionId, WireMessage};

use crate::error::NetError;
use crate::framing::{encode_frame_into, read_frame_sniff, DEFAULT_MAX_FRAME};

/// Who is opening a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Peer {
    /// A data-owner client.
    Client(ClientId),
    /// The training server (connecting to the key authority).
    Server,
}

/// The connection handshake: names the session, the connecting role,
/// and the session agreement the peer must share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// The session this connection belongs to.
    pub session: SessionId,
    /// The connecting role.
    pub peer: Peer,
    /// The wire-level session agreement; the first connection fixes it,
    /// later ones must match bit-for-bit.
    pub config: SessionConfig,
}

/// One frame on a CryptoNN transport.
#[allow(clippy::large_enum_variant)] // payloads are heap-dominated, as WireMessage
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetMsg {
    /// Connection handshake (first frame of every connection).
    Hello(Hello),
    /// A session-protocol message.
    Msg(WireMessage),
    /// The peer refuses or aborts the exchange with a reason.
    Reject(String),
}

/// The sending half of a transport. Sends are whole frames, so a
/// mutex around a `FrameTx` is enough to serialize concurrent writers.
pub trait FrameTx: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] past the cap, I/O failures, or a
    /// hung-up peer.
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError>;

    /// Tears the connection down, unblocking a peer (or a local reader
    /// thread) stuck in `recv`. Idempotent; errors are ignored.
    fn close(&mut self);
}

/// The receiving half of a transport.
pub trait FrameRx: Send {
    /// Receives one frame; `None` on a clean close.
    ///
    /// # Errors
    ///
    /// Typed framing errors ([`NetError::FrameTooLarge`],
    /// [`NetError::Truncated`], [`NetError::Malformed`]) and I/O
    /// failures.
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError>;
}

/// A bidirectional framed pipe that can split into independently-owned
/// halves (a reader thread and a shared writer).
pub trait Transport: FrameTx + FrameRx {
    /// Splits into send and receive halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>);
}

// ---------------------------------------------------------------- TCP

/// A framed codec over a `std::net::TcpStream`.
///
/// `TCP_NODELAY` is set: session frames are latency-sensitive
/// request/response traffic, and Nagle coalescing would stall the
/// per-step key exchanges.
#[derive(Debug)]
pub struct TcpTransport {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    max_frame: usize,
    /// Negotiated wire format, shared across [`Transport::split`].
    format: FormatCell,
    /// Reused encode buffer — one allocation per connection, not per
    /// frame.
    scratch: Vec<u8>,
}

impl TcpTransport {
    /// Wraps an accepted or connected stream. The wire format starts
    /// at the process default (`CRYPTONN_WIRE`) and mirrors the peer
    /// from the first received frame on.
    ///
    /// # Errors
    ///
    /// Propagates `try_clone` failure.
    pub fn new(stream: TcpStream, max_frame: usize) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
            max_frame,
            format: FormatCell::new(WireFormat::from_env()),
            scratch: Vec::new(),
        })
    }

    /// The connection's current wire format (the process default until
    /// the first frame arrives, the last received frame's format
    /// after).
    pub fn wire_format(&self) -> WireFormat {
        self.format.get()
    }

    /// Pins this connection's *outbound* format explicitly — the
    /// per-connection override of the process default. A dialect
    /// chosen before the first frame goes out governs the whole
    /// exchange: the peer mirrors whatever it receives, so the reply
    /// traffic follows automatically.
    pub fn set_wire_format(&self, format: WireFormat) {
        self.format.set(format);
    }

    /// Connects to `addr` with the given frame cap.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr, max_frame: usize) -> std::io::Result<Self> {
        Self::new(TcpStream::connect(addr)?, max_frame)
    }

    /// Connects to `addr`, giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] (`during: "connect"`) when the deadline
    /// elapses before the handshake completes; [`NetError::Io`] on
    /// other connection failures.
    pub fn connect_timeout(
        addr: SocketAddr,
        max_frame: usize,
        timeout: Duration,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ) {
                NetError::Timeout { during: "connect" }
            } else {
                NetError::Io(e.to_string())
            }
        })?;
        Ok(Self::new(stream, max_frame)?)
    }

    /// Bounds how long a `recv` may wait for the peer. `None` clears
    /// the bound. An elapsed deadline surfaces as
    /// [`NetError::Timeout`], so a driver can distinguish a quiet peer
    /// from a broken pipe and retry. The bound is a socket property:
    /// it survives [`Transport::split`].
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

/// Assembles one frame in the cell's current format into `scratch` and
/// writes it whole — the shared hot path of both TCP senders.
fn send_tcp_frame(
    writer: &mut TcpStream,
    msg: &NetMsg,
    max_frame: usize,
    format: &FormatCell,
    scratch: &mut Vec<u8>,
) -> Result<(), NetError> {
    encode_frame_into(msg, max_frame, format.get(), scratch)?;
    writer.write_all(scratch)?;
    writer.flush()?;
    Ok(())
}

impl FrameTx for TcpTransport {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        send_tcp_frame(
            &mut self.writer,
            msg,
            self.max_frame,
            &self.format,
            &mut self.scratch,
        )
    }

    fn close(&mut self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

impl FrameRx for TcpTransport {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        match read_frame_sniff(&mut self.reader, self.max_frame)? {
            Some((msg, format)) => {
                self.format.set(format);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let tx = TcpFrameTx {
            writer: self.writer,
            max_frame: self.max_frame,
            format: self.format.clone(),
            scratch: self.scratch,
        };
        let rx = TcpFrameRx {
            reader: self.reader,
            max_frame: self.max_frame,
            format: self.format,
        };
        (Box::new(tx), Box::new(rx))
    }
}

struct TcpFrameTx {
    writer: TcpStream,
    max_frame: usize,
    format: FormatCell,
    scratch: Vec<u8>,
}

impl FrameTx for TcpFrameTx {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        send_tcp_frame(
            &mut self.writer,
            msg,
            self.max_frame,
            &self.format,
            &mut self.scratch,
        )
    }

    fn close(&mut self) {
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

struct TcpFrameRx {
    reader: BufReader<TcpStream>,
    max_frame: usize,
    format: FormatCell,
}

impl FrameRx for TcpFrameRx {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        match read_frame_sniff(&mut self.reader, self.max_frame)? {
            Some((msg, format)) => {
                self.format.set(format);
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }
}

// ---------------------------------------------------------- in-memory

/// One end of an in-memory transport pair. Frames cross the channel in
/// their encoded byte form, so the codec (caps included) is exercised
/// exactly as over TCP; the bounded channel depth provides the same
/// backpressure a socket buffer would.
pub struct MemTransport {
    tx: Option<SyncSender<Vec<u8>>>,
    rx: Receiver<Vec<u8>>,
    max_frame: usize,
    format: FormatCell,
}

/// Builds a connected in-memory transport pair with the given channel
/// depth (frames buffered per direction before senders block) and
/// frame cap.
pub fn mem_pair(depth: usize, max_frame: usize) -> (MemTransport, MemTransport) {
    let (a_tx, a_rx) = std::sync::mpsc::sync_channel(depth.max(1));
    let (b_tx, b_rx) = std::sync::mpsc::sync_channel(depth.max(1));
    (
        MemTransport {
            tx: Some(a_tx),
            rx: b_rx,
            max_frame,
            format: FormatCell::new(WireFormat::from_env()),
        },
        MemTransport {
            tx: Some(b_tx),
            rx: a_rx,
            max_frame,
            format: FormatCell::new(WireFormat::from_env()),
        },
    )
}

/// [`mem_pair`] with the default frame cap and a small depth.
pub fn mem_pair_default() -> (MemTransport, MemTransport) {
    mem_pair(16, DEFAULT_MAX_FRAME)
}

fn decode_mem_frame(
    bytes: &[u8],
    max_frame: usize,
    format: &FormatCell,
) -> Result<Option<NetMsg>, NetError> {
    let mut cursor = bytes;
    match read_frame_sniff(&mut cursor, max_frame)? {
        Some((msg, fmt)) => {
            format.set(fmt);
            Ok(Some(msg))
        }
        None => Ok(None),
    }
}

fn send_mem_frame(
    tx: &Option<SyncSender<Vec<u8>>>,
    msg: &NetMsg,
    max_frame: usize,
    format: &FormatCell,
) -> Result<(), NetError> {
    let mut frame = Vec::new();
    encode_frame_into(msg, max_frame, format.get(), &mut frame)?;
    match tx {
        Some(tx) => tx.send(frame).map_err(|_| NetError::Disconnected),
        None => Err(NetError::Disconnected),
    }
}

impl FrameTx for MemTransport {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        send_mem_frame(&self.tx, msg, self.max_frame, &self.format)
    }

    fn close(&mut self) {
        self.tx.take();
    }
}

impl FrameRx for MemTransport {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        match self.rx.recv() {
            Ok(frame) => decode_mem_frame(&frame, self.max_frame, &self.format),
            Err(_) => Ok(None), // peer dropped: clean close
        }
    }
}

impl Transport for MemTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let tx = MemFrameTx {
            tx: self.tx,
            max_frame: self.max_frame,
            format: self.format.clone(),
        };
        let rx = MemFrameRx {
            rx: self.rx,
            max_frame: self.max_frame,
            format: self.format,
        };
        (Box::new(tx), Box::new(rx))
    }
}

struct MemFrameTx {
    tx: Option<SyncSender<Vec<u8>>>,
    max_frame: usize,
    format: FormatCell,
}

impl FrameTx for MemFrameTx {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        send_mem_frame(&self.tx, msg, self.max_frame, &self.format)
    }

    fn close(&mut self) {
        self.tx.take();
    }
}

struct MemFrameRx {
    rx: Receiver<Vec<u8>>,
    max_frame: usize,
    format: FormatCell,
}

impl FrameRx for MemFrameRx {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        match self.rx.recv() {
            Ok(frame) => decode_mem_frame(&frame, self.max_frame, &self.format),
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptonn_protocol::{ClientId, SessionId};

    #[test]
    fn mem_pair_roundtrips_frames() {
        let (mut a, mut b) = mem_pair_default();
        a.send(&NetMsg::Reject("nope".into())).unwrap();
        assert_eq!(b.recv().unwrap(), Some(NetMsg::Reject("nope".into())));
        b.send(&NetMsg::Reject("back".into())).unwrap();
        assert_eq!(a.recv().unwrap(), Some(NetMsg::Reject("back".into())));
        a.close();
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn mem_pair_enforces_frame_cap() {
        let (mut a, _b) = mem_pair(4, 8);
        let err = a.send(&NetMsg::Reject("way too long for 8 bytes".into()));
        assert!(matches!(err, Err(NetError::FrameTooLarge { max: 8, .. })));
    }

    #[test]
    fn read_timeout_surfaces_as_typed_timeout() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || listener.accept().unwrap().0);
        let mut t =
            TcpTransport::connect_timeout(addr, DEFAULT_MAX_FRAME, Duration::from_secs(5)).unwrap();
        let _held_open = accept.join().unwrap(); // peer connected but silent
        t.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        match t.recv() {
            Err(NetError::Timeout { during }) => assert_eq!(during, "socket read"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The deadline poisons nothing: clearing it restores blocking
        // reads, and a clean peer close still reads as None.
        t.set_read_timeout(None).unwrap();
        drop(_held_open);
        assert_eq!(t.recv().unwrap(), None);
    }

    #[test]
    fn connect_timeout_to_live_listener_succeeds() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = TcpTransport::connect_timeout(addr, DEFAULT_MAX_FRAME, Duration::from_secs(5));
        assert!(t.is_ok());
    }

    #[test]
    fn peer_roles_serialize() {
        let peer = Peer::Client(ClientId(3));
        let json = serde_json::to_string(&peer).unwrap();
        assert_eq!(serde_json::from_str::<Peer>(&json).unwrap(), peer);
        let _ = SessionId(7); // referenced: Hello carries it
    }
}
