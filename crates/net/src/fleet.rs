//! The sharded inference fleet: N serving shards behind one
//! reactor-driven front door.
//!
//! [`InferenceServer`](crate::inference::InferenceServer) runs one
//! serving worker behind a thread-per-connection accept loop, so both
//! its connection count and its sweep throughput are single-lane.
//! [`InferenceFleet`] scales both axes without touching the protocol:
//!
//! - **One listening socket, one loop thread** — a
//!   [`Reactor`] accepts every predict client and multiplexes their
//!   framed traffic; thousands of idle connections cost a slab entry
//!   each, not a thread.
//! - **Session-hashed shard routing** — each handshaken client id is
//!   hashed onto one of N [`InferenceSession`] shards (a deterministic
//!   splitmix on the id, so a client's requests stay FIFO on one
//!   shard). Every shard runs the *same* event-driven state machine as
//!   the single-lane server, fed through its own bounded queue by the
//!   loop; a full queue parks the frame in the reactor and suspends
//!   that connection's reads — TCP backpressure, end to end.
//! - **One warmed key cache for the whole fleet** — the shards share a
//!   single `Arc<CachingKeyService<ChannelKeyService>>` (and its one
//!   authority link). Correctness: the cache is keyed on the exact
//!   quantized weight vectors (DESIGN.md §12), and every shard serves
//!   a replica restored from one [`MlpSnapshot`], so their key
//!   requests are identical — a key derived by any shard is a hit for
//!   all, and the steady state is authority-free fleet-wide.
//! - **One persisted table cache** — all replicas attach the same
//!   on-disk BSGS table directory (`CNNTBL03`); the fingerprinted
//!   tmp+rename protocol makes concurrent shard access safe, and a
//!   table built by one shard warm-starts the rest.
//!
//! Served predictions are bit-identical to the in-process
//! [`predict_encrypted`](cryptonn_core::CryptoMlp::predict_encrypted)
//! path and to the thread-per-connection server — the equivalence the
//! reactor smoke test and the `predict_serve` open-loop bench arm pin
//! down.
//!
//! [`MlpSnapshot`]: cryptonn_core::MlpSnapshot

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use cryptonn_core::CryptoMlp;
use cryptonn_fe::{CachingKeyService, KeyCacheStats};
use cryptonn_protocol::{
    ChannelKeyService, ClientId, InferenceOptions, InferenceSession, ModelSpec, Party,
    PublicParams, SessionConfig, SessionId, WireMessage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::authority::AuthorityConnector;
use crate::framing::DEFAULT_MAX_FRAME;
use crate::reactor::{
    ConnId, Reactor, ReactorApp, ReactorCtx, ReactorHandle, ReactorOptions, ReactorStats,
};
use crate::transport::{Hello, NetMsg, Peer};
use cryptonn_wire::WireFormat;

/// Tuning for an [`InferenceFleet`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Serving shards (worker threads), each its own
    /// [`InferenceSession`] over a replica of the frozen model.
    pub shards: usize,
    /// Bounded inbound-queue depth per shard — the backpressure
    /// boundary between the loop and a shard worker.
    pub queue_depth: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
    /// Each shard's coalescing and (shared) key-cache knobs.
    pub session: InferenceOptions,
    /// On-disk BSGS table cache directory shared by every shard.
    pub table_cache: Option<std::path::PathBuf>,
    /// Close handshaken connections idle longer than this.
    pub idle_timeout: Option<Duration>,
    /// Close connections that never complete the `Hello` handshake.
    pub handshake_timeout: Duration,
    /// Outbound byte bound per connection (slow-consumer cutoff).
    pub outbound_cap: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            shards: 2,
            queue_depth: 64,
            max_frame: DEFAULT_MAX_FRAME,
            session: InferenceOptions::default(),
            table_cache: None,
            idle_timeout: None,
            handshake_timeout: Duration::from_secs(30),
            outbound_cap: 64 * 1024 * 1024,
        }
    }
}

/// `client -> (connection, shard, wire format)`: written by the loop
/// on handshake and close, read by shard workers to address responses
/// in the format the client speaks.
type Registry = Arc<Mutex<HashMap<ClientId, (ConnId, usize, WireFormat)>>>;

#[derive(Debug, Default)]
struct ShardStats {
    served: AtomicU64,
    sweeps: AtomicU64,
}

/// Deterministic client→shard assignment: a splitmix64 finalizer over
/// the client id. Stable across restarts (no per-process seed), so a
/// reconnecting client lands on the same shard.
fn shard_of(client: ClientId, shards: usize) -> usize {
    let mut z = u64::from(client.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

type ShardEvent = (ClientId, Box<WireMessage>);

/// The front-door application run by the reactor loop: handshakes,
/// routes, and never computes.
struct FleetApp {
    session_id: SessionId,
    config: SessionConfig,
    params: Arc<PublicParams>,
    registry: Registry,
    shard_txs: Vec<SyncSender<ShardEvent>>,
    conn_clients: HashMap<ConnId, ClientId>,
}

impl FleetApp {
    fn reject(&self, ctx: &mut ReactorCtx<'_>, conn: ConnId, why: String) {
        let _ = ctx.send(conn, &NetMsg::Reject(why));
        ctx.close_after_flush(conn);
    }

    fn handshake(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId, hello: Hello) {
        let Peer::Client(client) = hello.peer else {
            self.reject(
                ctx,
                conn,
                "only clients connect to the inference fleet".into(),
            );
            return;
        };
        if hello.session != self.session_id {
            self.reject(
                ctx,
                conn,
                format!(
                    "this fleet serves {}, not {}",
                    self.session_id, hello.session
                ),
            );
            return;
        }
        if hello.config != self.config {
            self.reject(
                ctx,
                conn,
                format!("{} is served with a different config", self.session_id),
            );
            return;
        }
        let shard = shard_of(client, self.shard_txs.len());
        // The Hello frame's format is the connection's dialect: shard
        // workers answer this client the same way it spoke.
        let format = ctx.peer_format(conn);
        let evicted = self
            .registry
            .lock()
            .insert(client, (conn, shard, format))
            .map(|(old, _, _)| old);
        if let Some(old) = evicted {
            // Latest connection wins (the SessionServer rejoin rule):
            // the previous connection is dead or dying — typically a
            // half-open leftover of a client whose link dropped without
            // a FIN — and with no default idle reaping, refusing the
            // reconnect would lock the client id out permanently.
            self.conn_clients.remove(&old);
            ctx.close(old);
        }
        if ctx
            .send(
                conn,
                &NetMsg::Msg(WireMessage::PublicParams((*self.params).clone())),
            )
            .is_err()
        {
            self.registry.lock().remove(&client);
            ctx.close(conn);
            return;
        }
        self.conn_clients.insert(conn, client);
        ctx.set_handshaken(conn);
    }
}

impl ReactorApp for FleetApp {
    fn on_frame(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId, msg: NetMsg) -> Option<NetMsg> {
        match self.conn_clients.get(&conn).copied() {
            None => {
                match msg {
                    NetMsg::Hello(h) => self.handshake(ctx, conn, h),
                    _ => self.reject(ctx, conn, "expected a Hello frame".into()),
                }
                None
            }
            Some(client) => match msg {
                NetMsg::Msg(m) => {
                    let shard = shard_of(client, self.shard_txs.len());
                    match self.shard_txs[shard].try_send((client, Box::new(m))) {
                        Ok(()) => None,
                        // Shard at capacity: hand the frame back; the
                        // reactor parks it and stops reading us until
                        // the worker drains and nudges.
                        Err(TrySendError::Full((_, m))) => Some(NetMsg::Msg(*m)),
                        Err(TrySendError::Disconnected(_)) => {
                            self.reject(ctx, conn, "serving shard is down".into());
                            None
                        }
                    }
                }
                NetMsg::Hello(_) => {
                    self.reject(ctx, conn, "duplicate Hello".into());
                    None
                }
                NetMsg::Reject(_) => {
                    ctx.close(conn);
                    None
                }
            },
        }
    }

    fn on_closed(&mut self, _ctx: &mut ReactorCtx<'_>, conn: ConnId) {
        if let Some(client) = self.conn_clients.remove(&conn) {
            let mut registry = self.registry.lock();
            // Only unregister if the entry still names this connection
            // (a reconnect may have raced the close).
            if registry.get(&client).is_some_and(|(c, _, _)| *c == conn) {
                registry.remove(&client);
            }
        }
    }
}

fn shard_worker(
    mut session: InferenceSession,
    me: usize,
    inbound: Receiver<ShardEvent>,
    registry: Registry,
    handle: ReactorHandle,
    stats: Arc<ShardStats>,
) {
    let conn_of = |client: ClientId| registry.lock().get(&client).map(|(c, _, f)| (*c, *f));
    loop {
        // Block for the first event, drain the backlog — the backlog
        // is the coalescing window, exactly as in the single-lane
        // serving worker.
        let first = match inbound.recv() {
            Ok(ev) => ev,
            Err(_) => return, // fleet shut down
        };
        let mut events = vec![first];
        while let Ok(ev) = inbound.try_recv() {
            events.push(ev);
        }
        let mut outs = Vec::new();
        for (client, msg) in events {
            match session.handle_message(client, &msg) {
                Ok(o) => outs.extend(o),
                Err(e) => {
                    // Malformed traffic costs the offender its
                    // connection; the shard and everyone else's
                    // requests are untouched.
                    if let Some((conn, fmt)) = conn_of(client) {
                        let _ = handle.send_fmt(conn, &NetMsg::Reject(e.to_string()), fmt);
                        handle.close(conn);
                    }
                }
            }
        }
        match session.flush() {
            Ok(o) => outs.extend(o),
            Err(e) => {
                // A sweep failure loses the drained window and is not
                // attributable to one client: tell this shard's
                // clients and drop them; other shards keep serving.
                let mine: Vec<(ConnId, WireFormat)> = registry
                    .lock()
                    .iter()
                    .filter(|(_, (_, s, _))| *s == me)
                    .map(|(_, (conn, _, fmt))| (*conn, *fmt))
                    .collect();
                for (conn, fmt) in mine {
                    let _ = handle.send_fmt(
                        conn,
                        &NetMsg::Reject(format!("serving sweep failed: {e}")),
                        fmt,
                    );
                    handle.close(conn);
                }
            }
        }
        // Publish before routing: by the time a client observes a
        // response, the counters already cover its sweep.
        stats.served.store(session.served(), Ordering::SeqCst);
        stats.sweeps.store(session.sweeps(), Ordering::SeqCst);
        for ob in outs {
            let Party::Client(id) = ob.to else { continue };
            if let Some((conn, fmt)) = conn_of(ClientId(id)) {
                // Dead conns drop the frame; backpressure closes are
                // the reactor's call.
                let _ = handle.send_fmt(conn, &NetMsg::Msg(ob.msg), fmt);
            }
        }
        // The queue has room again: retry frames parked on us.
        handle.nudge();
    }
}

/// The sharded serving daemon: one reactor front door, N
/// [`InferenceSession`] shards over replicas of one frozen model, one
/// shared warmed key cache. See the module docs.
pub struct InferenceFleet {
    addr: SocketAddr,
    reactor: Option<Reactor>,
    workers: Vec<JoinHandle<()>>,
    registry: Registry,
    shard_stats: Vec<Arc<ShardStats>>,
    keys: Arc<CachingKeyService<ChannelKeyService>>,
}

impl InferenceFleet {
    /// Binds `addr` and serves `model` (trained under `config`) across
    /// [`FleetOptions::shards`] shards, reaching the key authority
    /// through `authority` exactly once.
    ///
    /// Shard replicas are restored from one
    /// [`snapshot`](CryptoMlp::snapshot) of `model`, so every shard
    /// serves bit-identical weights (and therefore issues identical
    /// key requests — what makes the shared cache correct).
    ///
    /// # Errors
    ///
    /// Bind and authority failures; a non-MLP serving spec; snapshot
    /// failures.
    pub fn start(
        addr: &str,
        session_id: SessionId,
        config: &SessionConfig,
        model: CryptoMlp,
        authority: Arc<dyn AuthorityConnector>,
        options: FleetOptions,
    ) -> std::io::Result<Self> {
        let shards = options.shards.max(1);
        let (params, link) = authority
            .connect(session_id, config)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let keys = Arc::new(CachingKeyService::new(
            ChannelKeyService::new(&params, link),
            options.session.key_cache,
        ));

        // Replicate the frozen model: shard 0 serves the original, the
        // rest are rebuilt from the spec and restored from one
        // snapshot (CryptoMlp is deliberately not Clone — its secure
        // layer holds live table state).
        let snapshot = model
            .snapshot()
            .map_err(|e| std::io::Error::other(format!("model snapshot failed: {e}")))?;
        let ModelSpec::Mlp(spec) = &config.model else {
            return Err(std::io::Error::other(
                "the inference fleet serves MLP models",
            ));
        };
        let cc = *model.config();
        let mut models = vec![model];
        for _ in 1..shards {
            let mut rng = StdRng::seed_from_u64(config.model_seed);
            let mut replica = CryptoMlp::new(
                spec.feature_dim,
                &spec.hidden,
                spec.classes,
                spec.objective,
                cc,
                &mut rng,
            );
            replica
                .restore(&snapshot)
                .map_err(|e| std::io::Error::other(format!("model restore failed: {e}")))?;
            models.push(replica);
        }

        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let params = Arc::new(params);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(options.queue_depth.max(1));
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }

        let reactor = Reactor::start(
            listener,
            ReactorOptions {
                max_frame: options.max_frame,
                outbound_cap: options.outbound_cap,
                handshake_timeout: options.handshake_timeout,
                idle_timeout: options.idle_timeout,
                ..ReactorOptions::default()
            },
            |_| FleetApp {
                session_id,
                config: config.clone(),
                params: Arc::clone(&params),
                registry: Arc::clone(&registry),
                shard_txs,
                conn_clients: HashMap::new(),
            },
        )?;

        let mut workers = Vec::with_capacity(shards);
        let mut shard_stats = Vec::with_capacity(shards);
        for (me, (mut model, rx)) in models.into_iter().zip(shard_rxs).enumerate() {
            if let Some(dir) = &options.table_cache {
                model.attach_table_cache(dir.clone());
            }
            let session =
                InferenceSession::with_shared_keys(Arc::clone(&keys), model, options.session);
            let stats = Arc::new(ShardStats::default());
            shard_stats.push(Arc::clone(&stats));
            let registry = Arc::clone(&registry);
            let handle = reactor.handle();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cryptonn-shard-{me}"))
                    .spawn(move || shard_worker(session, me, rx, registry, handle, stats))?,
            );
        }

        Ok(Self {
            addr,
            reactor: Some(reactor),
            workers,
            registry,
            shard_stats,
            keys,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far, fleet-wide.
    pub fn served(&self) -> u64 {
        self.shard_stats
            .iter()
            .map(|s| s.served.load(Ordering::SeqCst))
            .sum()
    }

    /// Secure sweeps run so far, fleet-wide (≤ served; the gap is the
    /// coalescing).
    pub fn sweeps(&self) -> u64 {
        self.shard_stats
            .iter()
            .map(|s| s.sweeps.load(Ordering::SeqCst))
            .sum()
    }

    /// The *shared* functional-key cache counters — one cache for the
    /// whole fleet.
    pub fn cache_stats(&self) -> KeyCacheStats {
        self.keys.stats()
    }

    /// Handshaken predict connections.
    pub fn live_clients(&self) -> usize {
        self.registry.lock().len()
    }

    /// The reactor's connection counters (accepted/live/peak).
    pub fn reactor_stats(&self) -> ReactorStats {
        self.reactor
            .as_ref()
            .map(|r| r.stats())
            .unwrap_or(ReactorStats {
                accepted: 0,
                live: 0,
                peak: 0,
            })
    }

    /// Which readiness backend the front door runs on (`"epoll"` or
    /// `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.reactor.as_ref().map_or("none", |r| r.backend())
    }

    /// Stops the loop, drops every connection, and joins the shard
    /// workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            // Joining the loop drops the app, whose shard senders
            // starve the workers into exiting.
            reactor.shutdown();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for InferenceFleet {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.stop();
        }
    }
}
