//! The length-prefixed framed codec.
//!
//! Every message on a CryptoNN transport is one *frame*: a 4-byte
//! big-endian payload length followed by the payload — compact JSON
//! (the seed format) or the binary encoding of `cryptonn-wire`, told
//! apart by the payload's first byte, so mixed-format peers share one
//! daemon with no handshake field (DESIGN.md §16). Decoding is
//! defensive — the reader enforces a configurable payload cap *before*
//! allocating, distinguishes a clean close (EOF at a frame boundary)
//! from a truncated frame (EOF inside one), and surfaces garbage
//! payloads as a typed error — a hostile peer can fail a connection,
//! never panic or balloon the process.

use std::io::{ErrorKind, Read, Write};

use cryptonn_wire::WireFormat;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::NetError;

/// Default payload cap: generous for encrypted image batches at the
/// paper's dimensions, far below anything that could balloon a server.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Frame header size on the wire.
pub const FRAME_HEADER: usize = 4;

/// Encodes `msg` as one frame (header + JSON payload) — the seed
/// format. Format-negotiating callers use [`encode_frame_fmt`].
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the encoded payload exceeds `max`;
/// [`NetError::Malformed`] on serializer failure.
pub fn encode_frame<T: Serialize>(msg: &T, max: usize) -> Result<Vec<u8>, NetError> {
    encode_frame_fmt(msg, max, WireFormat::Json)
}

/// Encodes `msg` as one frame in `format`.
///
/// # Errors
///
/// As [`encode_frame`].
pub fn encode_frame_fmt<T: Serialize>(
    msg: &T,
    max: usize,
    format: WireFormat,
) -> Result<Vec<u8>, NetError> {
    let mut frame = Vec::new();
    encode_frame_into(msg, max, format, &mut frame)?;
    Ok(frame)
}

/// Encodes `msg` as one frame in `format` into `buf` (cleared first) —
/// the allocation-reuse entry point: a connection writer keeps one
/// scratch buffer across sends instead of allocating per frame, and
/// the payload is serialized directly behind the header with no
/// string→bytes copy.
///
/// # Errors
///
/// As [`encode_frame`]. On error `buf` contents are unspecified.
pub fn encode_frame_into<T: Serialize>(
    msg: &T,
    max: usize,
    format: WireFormat,
    buf: &mut Vec<u8>,
) -> Result<(), NetError> {
    buf.clear();
    buf.extend_from_slice(&[0u8; FRAME_HEADER]);
    cryptonn_wire::append_payload(msg, format, buf)
        .map_err(|e| NetError::Malformed(e.to_string()))?;
    let len = buf.len() - FRAME_HEADER;
    if len > max {
        return Err(NetError::FrameTooLarge { len, max });
    }
    buf[..FRAME_HEADER].copy_from_slice(&(len as u32).to_be_bytes());
    Ok(())
}

/// Writes `msg` as one frame. The frame is assembled first and written
/// with a single `write_all`, so concurrent writers serialized by a
/// lock never interleave partial frames.
///
/// # Errors
///
/// As [`encode_frame`], plus I/O failures.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T, max: usize) -> Result<(), NetError> {
    let frame = encode_frame(msg, max)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning `None` on a clean close (EOF exactly at
/// a frame boundary).
///
/// # Errors
///
/// - [`NetError::FrameTooLarge`] if the header announces a payload
///   beyond `max` — detected before any allocation;
/// - [`NetError::Truncated`] if the stream ends inside the header or
///   the payload;
/// - [`NetError::Malformed`] if the payload does not decode;
/// - [`NetError::Timeout`] when a read deadline (`SO_RCVTIMEO`)
///   elapses mid-wait;
/// - [`NetError::Io`] on other I/O failures.
pub fn read_frame<R: Read, T: DeserializeOwned>(
    r: &mut R,
    max: usize,
) -> Result<Option<T>, NetError> {
    Ok(read_frame_sniff(r, max)?.map(|(msg, _)| msg))
}

/// Like [`read_frame`], also reporting which format the payload
/// carried — what a mirroring receiver feeds its connection's
/// [`FormatCell`](cryptonn_wire::FormatCell).
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_sniff<R: Read, T: DeserializeOwned>(
    r: &mut R,
    max: usize,
) -> Result<Option<(T, WireFormat)>, NetError> {
    let mut header = [0u8; FRAME_HEADER];
    match read_exact_or_eof(r, &mut header)? {
        Filled::Eof => return Ok(None),
        Filled::Partial(got) => {
            return Err(NetError::Truncated {
                missing: FRAME_HEADER - got,
            })
        }
        Filled::Complete => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(NetError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        Filled::Complete => {}
        Filled::Eof => return Err(NetError::Truncated { missing: len }),
        Filled::Partial(got) => return Err(NetError::Truncated { missing: len - got }),
    }
    let format = WireFormat::sniff(&payload);
    // Decoded straight from bytes — the format dispatcher sniffs, the
    // JSON parser validates UTF-8 only where it matters (no
    // whole-payload `from_utf8` pre-pass).
    cryptonn_wire::decode_payload(&payload)
        .map(|msg| Some((msg, format)))
        .map_err(|e| NetError::Malformed(e.to_string()))
}

enum Filled {
    /// The buffer was filled completely.
    Complete,
    /// EOF before the first byte.
    Eof,
    /// EOF after `n` bytes.
    Partial(usize),
}

/// `read_exact`, but distinguishing "EOF at the boundary" from "EOF
/// mid-buffer" — the difference between a closed connection and a
/// truncated frame.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Filled, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A blocking read under SO_RCVTIMEO reports its elapsed
            // deadline as either kind depending on the platform; both
            // mean "the peer went quiet", not "the pipe broke". This is
            // the only place WouldBlock becomes a timeout — the framed
            // readers run on blocking sockets, where it cannot mean
            // "retry".
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(NetError::Timeout {
                    during: "socket read",
                })
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Filled::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![1u32, 2, 3], DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, &"hello".to_string(), DEFAULT_MAX_FRAME).unwrap();
        let mut r = &buf[..];
        let a: Vec<u32> = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
        let b: String = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(b, "hello");
        assert!(read_frame::<_, String>(&mut r, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_frames_are_refused_on_both_sides() {
        let big = "x".repeat(100);
        assert!(matches!(
            encode_frame(&big, 16),
            Err(NetError::FrameTooLarge { max: 16, .. })
        ));
        // A hostile header announcing a huge payload is refused before
        // allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        assert!(matches!(
            read_frame::<_, String>(&mut &wire[..], 1024),
            Err(NetError::FrameTooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &"payload".to_string(), 1024).unwrap();
        // Chop inside the payload.
        wire.truncate(wire.len() - 3);
        assert!(matches!(
            read_frame::<_, String>(&mut &wire[..], 1024),
            Err(NetError::Truncated { .. })
        ));
        // Chop inside the header.
        assert!(matches!(
            read_frame::<_, String>(&mut &wire[..2], 1024),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn binary_frames_roundtrip_and_sniff() {
        let msg = vec![7u64, 8, 9];
        let frame = encode_frame_fmt(&msg, DEFAULT_MAX_FRAME, WireFormat::Binary).unwrap();
        let mut r = &frame[..];
        let (back, fmt): (Vec<u64>, WireFormat) = read_frame_sniff(&mut r, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(back, msg);
        assert_eq!(fmt, WireFormat::Binary);
        // JSON frames sniff as JSON on the same reader path.
        let frame = encode_frame(&msg, DEFAULT_MAX_FRAME).unwrap();
        let mut r = &frame[..];
        let (back, fmt): (Vec<u64>, WireFormat) = read_frame_sniff(&mut r, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(back, msg);
        assert_eq!(fmt, WireFormat::Json);
    }

    #[test]
    fn encode_buffer_is_reusable() {
        let mut buf = Vec::new();
        encode_frame_into(&"first".to_string(), 1024, WireFormat::Binary, &mut buf).unwrap();
        let first = buf.clone();
        encode_frame_into(&"x".to_string(), 1024, WireFormat::Json, &mut buf).unwrap();
        assert_ne!(buf, first);
        let mut r = &buf[..];
        assert_eq!(
            read_frame::<_, String>(&mut r, 1024).unwrap().as_deref(),
            Some("x")
        );
    }

    #[test]
    fn garbage_payload_is_malformed_not_a_panic() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&4u32.to_be_bytes());
        wire.extend_from_slice(&[0xff, 0x00, 0xfe, 0x01]);
        assert!(matches!(
            read_frame::<_, String>(&mut &wire[..], 1024),
            Err(NetError::Malformed(_))
        ));
    }
}
