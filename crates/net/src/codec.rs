//! The incremental frame codec: the length-prefixed wire format of
//! [`framing`](crate::framing), reworked for nonblocking I/O.
//!
//! The blocking codec reads exactly one frame per call and writes whole
//! frames with `write_all`; a readiness-driven reactor gets neither
//! luxury. [`FrameDecoder`] consumes *arbitrary* byte chunks — a single
//! byte, half a header, three frames and a tail — and yields complete
//! frames as they materialize, bit-identical to what
//! [`read_frame`](crate::framing::read_frame) would have produced on
//! the same stream. [`OutboundQueue`] holds encoded frames awaiting a
//! writable socket, survives short writes mid-frame, and enforces a
//! byte bound — the reactor's backpressure boundary: a peer that stops
//! reading fills its queue and is disconnected rather than ballooning
//! the process.
//!
//! The wire format is unchanged (4-byte big-endian length + serde-JSON
//! payload), so reactor and thread-per-connection peers interoperate
//! frame-for-frame; the equivalence proptests in
//! `tests/codec_proptests.rs` pin this down at every chunk boundary.

use std::collections::VecDeque;
use std::io::{ErrorKind, Write};

use cryptonn_wire::WireFormat;
use serde::de::DeserializeOwned;

use crate::error::NetError;
use crate::framing::FRAME_HEADER;

/// An incremental decoder for the length-prefixed frame stream.
///
/// Feed raw bytes with [`extend`](Self::extend) as the socket yields
/// them; drain complete frames with [`next_msg`](Self::next_msg). The
/// decoder enforces the frame cap from the *header* — a hostile peer
/// announcing an oversized payload is refused before its bytes are
/// buffered — and its memory is bounded by the cap plus one read
/// chunk.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames; compacted
    /// away once they dominate the buffer.
    start: usize,
    max_frame: usize,
    /// Format of the last frame [`next_msg`](Self::next_msg) decoded —
    /// what a mirroring sender on this connection should speak. Starts
    /// at the seed JSON until a frame says otherwise.
    last_format: WireFormat,
}

impl FrameDecoder {
    /// An empty decoder enforcing `max_frame` as the payload cap.
    pub fn new(max_frame: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            max_frame,
            last_format: WireFormat::Json,
        }
    }

    /// The format of the most recently decoded frame (seed JSON before
    /// any frame arrived).
    pub fn last_format(&self) -> WireFormat {
        self.last_format
    }

    /// Appends raw stream bytes.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] if the buffered prefix already
    /// announces a payload beyond the cap — checked here as well as in
    /// [`next_msg`](Self::next_msg) so a hostile header poisons the
    /// connection before its payload accumulates.
    pub fn extend(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        // Compact before growing: once the consumed prefix outweighs
        // the live tail, move the tail down instead of reallocating.
        if self.start > 0 && self.start >= self.buf.len() - self.start {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
        if let Some(len) = self.pending_len() {
            if len > self.max_frame {
                return Err(NetError::FrameTooLarge {
                    len,
                    max: self.max_frame,
                });
            }
        }
        Ok(())
    }

    /// The announced payload length of the frame at the buffer head,
    /// once its header is complete.
    fn pending_len(&self) -> Option<usize> {
        let live = &self.buf[self.start..];
        if live.len() < FRAME_HEADER {
            return None;
        }
        let mut header = [0u8; FRAME_HEADER];
        header.copy_from_slice(&live[..FRAME_HEADER]);
        Some(u32::from_be_bytes(header) as usize)
    }

    /// Yields the next complete frame's payload bytes, or `None` if the
    /// buffer holds only a partial frame.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] past the cap.
    pub fn next_payload(&mut self) -> Result<Option<&[u8]>, NetError> {
        let Some(len) = self.pending_len() else {
            return Ok(None);
        };
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        if self.buf.len() - self.start < FRAME_HEADER + len {
            return Ok(None);
        }
        let at = self.start + FRAME_HEADER;
        self.start = at + len;
        Ok(Some(&self.buf[at..at + len]))
    }

    /// Yields the next complete frame, decoded, or `None` if the buffer
    /// holds only a partial frame.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] past the cap;
    /// [`NetError::Malformed`] if a complete payload does not decode —
    /// exactly the taxonomy of the blocking
    /// [`read_frame`](crate::framing::read_frame).
    pub fn next_msg<T: DeserializeOwned>(&mut self) -> Result<Option<T>, NetError> {
        // Borrow dance: `next_payload` holds `&mut self`, so sniff the
        // format into a local before updating the tracker.
        let (msg, format) = match self.next_payload()? {
            None => return Ok(None),
            Some(payload) => {
                let format = WireFormat::sniff(payload);
                // Decoded straight from the buffered bytes — sniffed
                // dispatch, no whole-payload `from_utf8` pre-pass.
                let msg = cryptonn_wire::decode_payload(payload)
                    .map_err(|e| NetError::Malformed(e.to_string()))?;
                (msg, format)
            }
        };
        self.last_format = format;
        Ok(Some(msg))
    }

    /// Bytes buffered but not yet consumed by a yielded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when the stream sits exactly at a frame boundary — an EOF
    /// here is a clean close, anywhere else a truncated frame.
    pub fn at_boundary(&self) -> bool {
        self.buffered() == 0
    }

    /// The typed error an EOF at the current position deserves: `None`
    /// at a frame boundary (clean close), [`NetError::Truncated`]
    /// mid-frame, with the missing byte count when the header already
    /// announced it.
    pub fn eof_error(&self) -> Option<NetError> {
        if self.at_boundary() {
            return None;
        }
        let missing = match self.pending_len() {
            Some(len) => (FRAME_HEADER + len).saturating_sub(self.buffered()),
            None => FRAME_HEADER - self.buffered(),
        };
        Some(NetError::Truncated { missing })
    }
}

/// How a flush attempt left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every queued byte reached the socket.
    Drained,
    /// The socket stopped accepting bytes (`WouldBlock`) with frames
    /// still queued — keep write interest registered.
    Blocked,
}

/// A bounded queue of encoded outbound frames tolerating short writes.
///
/// Frames enter whole (already encoded); [`write_to`](Self::write_to)
/// pushes as many bytes as the socket accepts, remembering the offset
/// inside a partially-written frame. The byte bound is the reactor's
/// backpressure discipline: pushing past it fails, and the caller's
/// policy (disconnect the slow consumer) keeps one unread peer from
/// holding the daemon's memory hostage.
#[derive(Debug)]
pub struct OutboundQueue {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    front_written: usize,
    queued_bytes: usize,
    max_bytes: usize,
}

impl OutboundQueue {
    /// An empty queue refusing to hold more than `max_bytes` of
    /// undelivered frames.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            frames: VecDeque::new(),
            front_written: 0,
            queued_bytes: 0,
            max_bytes: max_bytes.max(1),
        }
    }

    /// Enqueues one encoded frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Backpressure`] if the queue already holds
    /// `max_bytes` or more — the peer is not draining its socket.
    pub fn push(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        if self.queued_bytes >= self.max_bytes {
            return Err(NetError::Backpressure {
                queued: self.queued_bytes,
                max: self.max_bytes,
            });
        }
        self.queued_bytes += frame.len();
        self.frames.push_back(frame);
        Ok(())
    }

    /// Writes queued bytes until the sink blocks or the queue drains.
    /// Partial writes leave the offset mid-frame; the next call resumes
    /// exactly there, so the byte stream is identical to a blocking
    /// `write_all` of the same frames.
    ///
    /// # Errors
    ///
    /// I/O failures other than `WouldBlock` (which is
    /// [`WriteProgress::Blocked`], not an error).
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> Result<WriteProgress, NetError> {
        while let Some(front) = self.frames.front() {
            match w.write(&front[self.front_written..]) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => {
                    self.front_written += n;
                    self.queued_bytes -= n;
                    if self.front_written == front.len() {
                        self.frames.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(WriteProgress::Blocked),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(WriteProgress::Drained)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Undelivered bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{encode_frame, DEFAULT_MAX_FRAME};

    #[test]
    fn single_byte_feed_reassembles_frames() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame(&"alpha".to_string(), DEFAULT_MAX_FRAME).unwrap());
        wire.extend_from_slice(&encode_frame(&vec![1u32, 2, 3], DEFAULT_MAX_FRAME).unwrap());

        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut got_a: Option<String> = None;
        let mut got_b: Option<Vec<u32>> = None;
        for &b in &wire {
            dec.extend(&[b]).unwrap();
            if got_a.is_none() {
                got_a = dec.next_msg().unwrap();
            } else if got_b.is_none() {
                got_b = dec.next_msg().unwrap();
            }
        }
        assert_eq!(got_a.as_deref(), Some("alpha"));
        assert_eq!(got_b, Some(vec![1, 2, 3]));
        assert!(dec.at_boundary());
        assert!(dec.eof_error().is_none());
    }

    #[test]
    fn hostile_header_is_refused_before_payload_arrives() {
        let mut dec = FrameDecoder::new(1024);
        let err = dec.extend(&u32::MAX.to_be_bytes()).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { max: 1024, .. }));
    }

    #[test]
    fn eof_mid_frame_is_typed_truncation() {
        let frame = encode_frame(&"payload".to_string(), 1024).unwrap();
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&frame[..frame.len() - 3]).unwrap();
        assert_eq!(dec.next_msg::<String>().unwrap(), None);
        assert!(matches!(
            dec.eof_error(),
            Some(NetError::Truncated { missing: 3 })
        ));
        // Inside the header, the header's remainder is what is missing.
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&frame[..2]).unwrap();
        assert!(matches!(
            dec.eof_error(),
            Some(NetError::Truncated { missing: 2 })
        ));
    }

    #[test]
    fn garbage_payload_is_malformed() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&4u32.to_be_bytes());
        wire.extend_from_slice(&[0xff, 0x00, 0xfe, 0x01]);
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&wire).unwrap();
        assert!(matches!(
            dec.next_msg::<String>(),
            Err(NetError::Malformed(_))
        ));
    }

    /// A sink accepting at most `n` bytes per write, blocking every
    /// other call — the worst-case short-write socket.
    struct Dribble {
        out: Vec<u8>,
        per_write: usize,
        block_next: bool,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.block_next = true;
            let n = buf.len().min(self.per_write);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_produce_the_exact_blocking_byte_stream() {
        let frames: Vec<Vec<u8>> = ["one", "two", "three"]
            .iter()
            .map(|s| encode_frame(&s.to_string(), 1024).unwrap())
            .collect();
        let expected: Vec<u8> = frames.iter().flatten().copied().collect();

        let mut q = OutboundQueue::new(1 << 20);
        for f in &frames {
            q.push(f.clone()).unwrap();
        }
        let mut sink = Dribble {
            out: Vec::new(),
            per_write: 3,
            block_next: false,
        };
        loop {
            match q.write_to(&mut sink).unwrap() {
                WriteProgress::Drained => break,
                WriteProgress::Blocked => continue,
            }
        }
        assert_eq!(sink.out, expected);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn queue_bound_is_enforced() {
        let mut q = OutboundQueue::new(8);
        q.push(vec![0u8; 8]).unwrap();
        let err = q.push(vec![0u8; 1]).unwrap_err();
        assert!(matches!(err, NetError::Backpressure { queued: 8, max: 8 }));
    }
}
