//! The data-owner's network driver: a thin pump around
//! [`ClientSession`].
//!
//! The driver owns no protocol logic — it hands every received frame to
//! the client state machine and sends whatever the machine emits. The
//! state machine's credit window (replenished by `ModelDelta`
//! broadcasts) is what bounds the batches in flight, so a slow server
//! backpressures encryption naturally.
//!
//! Two entry points: [`run_client`] drives one connection and fails on
//! the first transport loss (the seed behavior), while
//! [`run_client_resumable`] reconnects through a caller-supplied
//! factory and re-syncs the state machine with the server's `Resume`
//! barrier — the client side of the crash-resume protocol.

use std::time::Duration;

use cryptonn_protocol::{ClientSession, SessionConfig, SessionId, SessionSummary, WireMessage};

use crate::error::NetError;
use crate::transport::{Hello, NetMsg, Peer, Transport};

/// Drives one connection until the summary arrives (`Ok`), the peer
/// rejects (`Err(Rejected)`), or the transport dies.
fn drive_connection<T: Transport>(
    mut transport: T,
    session: SessionId,
    sm: &mut ClientSession,
    config: &SessionConfig,
) -> Result<SessionSummary, NetError> {
    transport.send(&NetMsg::Hello(Hello {
        session,
        peer: Peer::Client(sm.id()),
        config: config.clone(),
    }))?;
    // The driver holds the config locally; feeding it to the state
    // machine yields the registration to forward.
    let outs = sm.handle_message(&WireMessage::Config(config.clone()))?;
    for ob in outs {
        transport.send(&NetMsg::Msg(ob.msg))?;
    }
    loop {
        match transport.recv()? {
            Some(NetMsg::Msg(msg)) => {
                let summary = match &msg {
                    WireMessage::Summary(s) => Some(s.clone()),
                    _ => None,
                };
                for ob in sm.handle_message(&msg)? {
                    transport.send(&NetMsg::Msg(ob.msg))?;
                }
                if let Some(summary) = summary {
                    return Ok(summary);
                }
            }
            Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
            Some(NetMsg::Hello(_)) => return Err(NetError::UnexpectedFrame("Hello")),
            None => return Err(NetError::Disconnected),
        }
    }
}

/// Runs one data-owner session over `transport` until the final
/// summary arrives, and returns it.
///
/// The handshake frames `Hello{session, client, config}`; the server
/// answers with the session's [`PublicParams`] and, once all clients
/// registered, the `Start` barrier — from there the state machine
/// streams its encrypted shard.
///
/// # Errors
///
/// - [`NetError::Rejected`] if the server refuses the session (config
///   mismatch, capacity, a failed session — including another member
///   disconnecting);
/// - [`NetError::Disconnected`] on a lost connection;
/// - [`NetError::Timeout`] when the transport carries a read deadline
///   ([`TcpTransport::set_read_timeout`](crate::TcpTransport::set_read_timeout))
///   and the server goes quiet past it;
/// - framing and encryption failures.
///
/// [`PublicParams`]: cryptonn_protocol::PublicParams
pub fn run_client<T: Transport>(
    transport: T,
    session: SessionId,
    mut sm: ClientSession,
    config: &SessionConfig,
) -> Result<SessionSummary, NetError> {
    drive_connection(transport, session, &mut sm, config)
}

/// Like [`run_client`], but survives connection loss: on a transport
/// failure the driver parks the state machine's emitter, asks
/// `connect` for a fresh transport (the attempt number starts at 0 for
/// the initial connection), and re-registers — the server answers a
/// repeat registration with the `Resume` barrier that rewinds the send
/// cursor to what it actually consumed, so lost in-flight batches are
/// re-encrypted and re-sent. At most `max_attempts` connections are
/// made in total.
///
/// The connect factory is the churn-policy hook: returning an error
/// gives up immediately (a client that leaves for good), blocking
/// until a restarted server is reachable rides out a daemon crash, and
/// wrapping the transport in a
/// [`FaultyTransport`](crate::fault::FaultyTransport) injects the next
/// fault.
///
/// # Errors
///
/// As [`run_client`]; [`NetError::Disconnected`] when the attempt
/// budget is exhausted, and connect-factory errors verbatim.
pub fn run_client_resumable<T, F>(
    mut connect: F,
    session: SessionId,
    mut sm: ClientSession,
    config: &SessionConfig,
    max_attempts: u32,
) -> Result<SessionSummary, NetError>
where
    T: Transport,
    F: FnMut(u32) -> Result<T, NetError>,
{
    let max_attempts = max_attempts.max(1);
    let mut last = NetError::Disconnected;
    for attempt in 0..max_attempts {
        if attempt > 0 {
            // The local cursor is stale (in-flight frames died with the
            // connection): emit nothing until the server's Resume (or
            // the Start barrier, if the schedule was not yet fixed)
            // re-syncs it.
            sm.park_until_resume();
        }
        let transport = connect(attempt)?;
        match drive_connection(transport, session, &mut sm, config) {
            Ok(summary) => return Ok(summary),
            // Only transport loss is retryable: a Reject is the
            // server's verdict, and protocol errors are local bugs.
            Err(e @ (NetError::Disconnected | NetError::Io(_) | NetError::Truncated { .. })) => {
                last = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}
