//! The data-owner's network driver: a thin pump around
//! [`ClientSession`].
//!
//! The driver owns no protocol logic — it hands every received frame to
//! the client state machine and sends whatever the machine emits. The
//! state machine's credit window (replenished by `ModelDelta`
//! broadcasts) is what bounds the batches in flight, so a slow server
//! backpressures encryption naturally.

use cryptonn_protocol::{ClientSession, SessionConfig, SessionId, SessionSummary, WireMessage};

use crate::error::NetError;
use crate::transport::{Hello, NetMsg, Peer, Transport};

/// Runs one data-owner session over `transport` until the final
/// summary arrives, and returns it.
///
/// The handshake frames `Hello{session, client, config}`; the server
/// answers with the session's [`PublicParams`] and, once all clients
/// registered, the `Start` barrier — from there the state machine
/// streams its encrypted shard.
///
/// # Errors
///
/// - [`NetError::Rejected`] if the server refuses the session (config
///   mismatch, capacity, a failed session — including another member
///   disconnecting);
/// - [`NetError::Disconnected`] on a lost connection;
/// - framing and encryption failures.
///
/// [`PublicParams`]: cryptonn_protocol::PublicParams
pub fn run_client<T: Transport>(
    mut transport: T,
    session: SessionId,
    mut sm: ClientSession,
    config: &SessionConfig,
) -> Result<SessionSummary, NetError> {
    transport.send(&NetMsg::Hello(Hello {
        session,
        peer: Peer::Client(sm.id()),
        config: config.clone(),
    }))?;
    // The driver holds the config locally; feeding it to the state
    // machine yields the registration to forward.
    let outs = sm.handle_message(&WireMessage::Config(config.clone()))?;
    for ob in outs {
        transport.send(&NetMsg::Msg(ob.msg))?;
    }
    loop {
        match transport.recv()? {
            Some(NetMsg::Msg(msg)) => {
                let summary = match &msg {
                    WireMessage::Summary(s) => Some(s.clone()),
                    _ => None,
                };
                for ob in sm.handle_message(&msg)? {
                    transport.send(&NetMsg::Msg(ob.msg))?;
                }
                if let Some(summary) = summary {
                    return Ok(summary);
                }
            }
            Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
            Some(NetMsg::Hello(_)) => return Err(NetError::UnexpectedFrame("Hello")),
            None => return Err(NetError::Disconnected),
        }
    }
}
