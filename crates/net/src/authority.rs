//! The key authority as a standalone networked service.
//!
//! [`AuthorityServer`] is the paper's trusted third party (Fig. 1) cut
//! loose from the training process: it listens on a socket, keys its
//! state by [`SessionId`], derives each session's master keys from the
//! session config on first contact, publishes [`PublicParams`], and
//! then serves the server's [`KeyRequest`] traffic over the framed
//! codec. The training server reaches it through an
//! [`AuthorityConnector`] — [`RemoteAuthority`] over TCP, or
//! [`LocalAuthority`] for in-process wiring — and the connection
//! implements the same [`AuthorityChannel`] hook the deterministic
//! runner and the replayer use, so no key-derivation logic forks
//! between transports.
//!
//! [`KeyRequest`]: cryptonn_protocol::KeyRequest

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use cryptonn_fe::threshold::{
    ShareClient, ShareClientError, ShareSpec, ThresholdKeyService, ThresholdSetup,
};
use cryptonn_fe::{FeError, FeboKeyRequest, FeboPartial, FeipPublicKey, KeyService};
use cryptonn_group::{Element, Scalar, SchnorrGroup};
use cryptonn_parallel::ThreadPool;
use cryptonn_protocol::{
    AuthorityChannel, AuthoritySession, FeboKeysRequest, FeipKeysRequest, KeyRequest, KeyResponse,
    PartialKey, ProtocolError, PublicParams, SessionConfig, SessionId, ShareInfo, ShareRequest,
    ShareSession, WireMessage,
};

use crate::error::NetError;
use crate::fault::{FaultPlan, FaultyTransport};
use crate::framing::DEFAULT_MAX_FRAME;
use crate::transport::{FrameRx, FrameTx, Hello, NetMsg, Peer, TcpTransport, Transport};

/// How a training server reaches the session's key authority: one call
/// per session, yielding the published parameters and the live
/// request/response channel.
pub trait AuthorityConnector: Send + Sync {
    /// Opens the authority link for `session` under `config`.
    ///
    /// # Errors
    ///
    /// Transport failures; the authority rejecting the session (e.g. a
    /// config that disagrees with an earlier connection).
    fn connect(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError>;
}

/// In-process authority wiring: each session gets its own
/// [`AuthoritySession`] behind a direct channel. The zero-network
/// arm — what the deterministic runner effectively uses — provided
/// here so a [`SessionServer`](crate::SessionServer) can run without a
/// separate authority daemon.
#[derive(Debug, Default)]
pub struct LocalAuthority;

struct DirectChannel(Arc<AuthoritySession>);

impl AuthorityChannel for DirectChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        Ok(self.0.handle(&req))
    }
}

impl AuthorityConnector for LocalAuthority {
    fn connect(
        &self,
        _session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError> {
        let authority = Arc::new(AuthoritySession::new(config));
        let params = authority.public_params_for(config);
        Ok((params, Box::new(DirectChannel(authority))))
    }
}

/// TCP connector to a running [`AuthorityServer`].
#[derive(Debug, Clone)]
pub struct RemoteAuthority {
    addr: SocketAddr,
    max_frame: usize,
}

impl RemoteAuthority {
    /// Points at an authority daemon.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Replaces the frame cap used on authority connections.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }
}

impl AuthorityConnector for RemoteAuthority {
    fn connect(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError> {
        let mut transport = TcpTransport::connect(self.addr, self.max_frame)?;
        transport.send(&NetMsg::Hello(Hello {
            session,
            peer: Peer::Server,
            config: config.clone(),
        }))?;
        let params = match transport.recv()? {
            Some(NetMsg::Msg(WireMessage::PublicParams(p))) => p,
            Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
            Some(_) => return Err(NetError::UnexpectedFrame("expected PublicParams")),
            None => return Err(NetError::Disconnected),
        };
        Ok((params, Box::new(RemoteAuthorityChannel { transport })))
    }
}

/// The [`AuthorityChannel`] over a live authority connection: each
/// exchange is one request frame out, one response frame back.
struct RemoteAuthorityChannel {
    transport: TcpTransport,
}

impl AuthorityChannel for RemoteAuthorityChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        self.transport
            .send(&NetMsg::Msg(WireMessage::KeyRequest(req)))
            .map_err(|e| ProtocolError::Transport(e.to_string()))?;
        match self
            .transport
            .recv()
            .map_err(|e| ProtocolError::Transport(e.to_string()))?
        {
            Some(NetMsg::Msg(WireMessage::KeyResponse(resp))) => Ok(resp),
            Some(NetMsg::Reject(why)) => Err(ProtocolError::Transport(format!(
                "authority rejected the exchange: {why}"
            ))),
            Some(other) => Err(ProtocolError::Transport(format!(
                "authority sent an unexpected frame: {other:?}"
            ))),
            None => Err(ProtocolError::Transport(
                "authority closed the connection mid-session".into(),
            )),
        }
    }
}

/// Options for the authority daemon.
#[derive(Debug, Clone, Copy)]
pub struct AuthorityOptions {
    /// Bounded pool size for connection handlers.
    pub pool_threads: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
    /// Run this daemon as one share-holder of a t-of-n threshold
    /// deployment instead of a full authority: it answers
    /// partial-derivation requests (and public-key lookups) but refuses
    /// full key derivations. `None` (the default) is the classic single
    /// authority.
    pub share: Option<ShareSpec>,
}

impl Default for AuthorityOptions {
    fn default() -> Self {
        Self {
            pool_threads: 16,
            max_frame: DEFAULT_MAX_FRAME,
            share: None,
        }
    }
}

impl AuthorityOptions {
    /// Options for share-holder `spec` of a threshold deployment.
    pub fn share_node(spec: ShareSpec) -> Self {
        Self {
            share: Some(spec),
            ..Self::default()
        }
    }
}

/// The per-session state behind one daemon: a full authority, or one
/// share-holder of a threshold deployment (per [`AuthorityOptions::share`]).
enum NodeRole {
    Full(Arc<AuthoritySession>),
    Share(Arc<ShareSession>),
}

impl NodeRole {
    fn for_options(options: &AuthorityOptions, config: &SessionConfig) -> (Self, PublicParams) {
        match options.share {
            Some(spec) => {
                let session = Arc::new(ShareSession::new(config, spec));
                let params = session.public_params_for(config);
                (NodeRole::Share(session), params)
            }
            None => {
                let session = Arc::new(AuthoritySession::new(config));
                let params = session.public_params_for(config);
                (NodeRole::Full(session), params)
            }
        }
    }

    fn handle_message(
        &self,
        msg: &WireMessage,
    ) -> Result<Vec<cryptonn_protocol::Outbound>, ProtocolError> {
        match self {
            NodeRole::Full(session) => session.handle_message(msg),
            NodeRole::Share(session) => session.handle_message(msg),
        }
    }

    fn clone_role(&self) -> Self {
        match self {
            NodeRole::Full(s) => NodeRole::Full(Arc::clone(s)),
            NodeRole::Share(s) => NodeRole::Share(Arc::clone(s)),
        }
    }
}

struct AuthorityEntry {
    config: SessionConfig,
    role: NodeRole,
    params: PublicParams,
}

type AuthorityRegistry = Arc<Mutex<HashMap<SessionId, AuthorityEntry>>>;

/// The networked key authority daemon: a session-keyed registry of
/// [`AuthoritySession`]s behind a TCP accept loop on a bounded pool.
pub struct AuthorityServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: AuthorityRegistry,
}

impl AuthorityServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(addr: &str, options: AuthorityOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry: AuthorityRegistry = Arc::new(Mutex::new(HashMap::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let pool = ThreadPool::new(options.pool_threads);
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&registry);
                    // `execute` blocks while the pool is saturated:
                    // backpressure on the accept loop rather than
                    // unbounded threads.
                    pool.execute(move || serve_authority_conn(stream, options, &registry));
                }
                // Dropping the pool joins the in-flight handlers.
            })
        };
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            registry,
        })
    }

    /// The bound address (use with [`RemoteAuthority::new`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently registered.
    pub fn session_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Stops accepting and waits for the accept loop. Live connections
    /// finish their current exchange and drop on the next read.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept wakes up.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AuthorityServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn serve_authority_conn(
    stream: TcpStream,
    options: AuthorityOptions,
    registry: &AuthorityRegistry,
) {
    let Ok(mut transport) = TcpTransport::new(stream, options.max_frame) else {
        return;
    };
    let hello = match transport.recv() {
        Ok(Some(NetMsg::Hello(h))) => h,
        Ok(_) | Err(_) => {
            let _ = transport.send(&NetMsg::Reject("expected a Hello frame".into()));
            return;
        }
    };
    // One authority state per session, derived deterministically from
    // the session config; later connections must agree bit-for-bit so
    // a mismatched peer cannot steer key derivation.
    let (role, params) = {
        let mut reg = registry.lock();
        match reg.get(&hello.session) {
            Some(entry) if entry.config != hello.config => {
                drop(reg);
                let _ = transport.send(&NetMsg::Reject(format!(
                    "{} already exists with a different config",
                    hello.session
                )));
                return;
            }
            Some(entry) => (entry.role.clone_role(), entry.params.clone()),
            None => {
                let (role, params) = NodeRole::for_options(&options, &hello.config);
                reg.insert(
                    hello.session,
                    AuthorityEntry {
                        config: hello.config.clone(),
                        role: role.clone_role(),
                        params: params.clone(),
                    },
                );
                (role, params)
            }
        }
    };
    if transport
        .send(&NetMsg::Msg(WireMessage::PublicParams(params)))
        .is_err()
    {
        return;
    }
    loop {
        match transport.recv() {
            Ok(Some(NetMsg::Msg(msg))) => match role.handle_message(&msg) {
                Ok(outs) => {
                    for ob in outs {
                        if transport.send(&NetMsg::Msg(ob.msg)).is_err() {
                            return;
                        }
                    }
                }
                Err(e) => {
                    let _ = transport.send(&NetMsg::Reject(e.to_string()));
                    return;
                }
            },
            Ok(Some(_)) => {
                let _ = transport.send(&NetMsg::Reject("unexpected frame".into()));
                return;
            }
            Ok(None) | Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Threshold mode: share-holder clients and the t-of-n connector
// ---------------------------------------------------------------------------

/// A [`ShareClient`] over a live TCP connection to one share-holder
/// daemon (an [`AuthorityServer`] started with
/// [`AuthorityOptions::share_node`]).
///
/// Transport failures surface as [`ShareClientError::Failed`], so the
/// combiner evicts the node and retries on the surviving quorum; a
/// typed refusal from the node ([`PartialKey::Denied`]) surfaces as
/// [`ShareClientError::Refused`] and propagates — a share-holder
/// refusing a request is a protocol outcome, not a dead peer.
pub struct TcpShareClient {
    index: u32,
    transport: Box<dyn Transport + Send>,
}

impl TcpShareClient {
    fn failed(msg: impl Into<String>) -> ShareClientError {
        ShareClientError::Failed(FeError::Protocol(msg.into()))
    }

    fn ask(&mut self, msg: WireMessage) -> Result<WireMessage, ShareClientError> {
        self.transport
            .send(&NetMsg::Msg(msg))
            .map_err(|e| Self::failed(e.to_string()))?;
        match self
            .transport
            .recv()
            .map_err(|e| Self::failed(e.to_string()))?
        {
            Some(NetMsg::Msg(reply)) => Ok(reply),
            Some(NetMsg::Reject(why)) => Err(Self::failed(format!(
                "share-holder rejected the exchange: {why}"
            ))),
            Some(other) => Err(Self::failed(format!(
                "share-holder sent an unexpected frame: {other:?}"
            ))),
            None => Err(Self::failed("share-holder closed the connection")),
        }
    }

    fn ask_partial(&mut self, req: ShareRequest) -> Result<PartialKey, ShareClientError> {
        match self.ask(WireMessage::ShareRequest(req))? {
            WireMessage::PartialKey(PartialKey::Denied(why)) => {
                Err(ShareClientError::Refused(FeError::Protocol(why)))
            }
            WireMessage::PartialKey(p) => Ok(p),
            other => Err(Self::failed(format!(
                "expected a partial-key frame, got {}",
                other.kind()
            ))),
        }
    }
}

impl ShareClient for TcpShareClient {
    fn index(&self) -> u32 {
        self.index
    }

    fn feip_public_key(&mut self, dim: usize) -> Result<FeipPublicKey, ShareClientError> {
        match self.ask(WireMessage::KeyRequest(KeyRequest::FeipMpk(dim)))? {
            WireMessage::KeyResponse(KeyResponse::FeipMpk(mpk)) => Ok(mpk),
            WireMessage::KeyResponse(KeyResponse::Denied(why)) => {
                Err(ShareClientError::Refused(FeError::Protocol(why)))
            }
            other => Err(Self::failed(format!(
                "expected a FeipMpk response, got {}",
                other.kind()
            ))),
        }
    }

    fn feip_partials(
        &mut self,
        dim: usize,
        ys: &[Vec<i64>],
    ) -> Result<Vec<Scalar>, ShareClientError> {
        match self.ask_partial(ShareRequest::Feip(FeipKeysRequest {
            dim,
            ys: ys.to_vec(),
        }))? {
            PartialKey::Feip(partials) => Ok(partials),
            _ => Err(Self::failed("expected FEIP partials")),
        }
    }

    fn febo_partials(
        &mut self,
        reqs: &[FeboKeyRequest],
    ) -> Result<Vec<FeboPartial>, ShareClientError> {
        match self.ask_partial(ShareRequest::Febo(FeboKeysRequest {
            reqs: reqs.to_vec(),
        }))? {
            PartialKey::Febo(partials) => Ok(partials),
            _ => Err(Self::failed("expected FEBO partials")),
        }
    }
}

/// Connector to a t-of-n fleet of share-holder daemons: the threshold
/// replacement for [`RemoteAuthority`] (DESIGN.md §17).
///
/// `connect` dials every share-holder, checks the public parameters and
/// share commitments agree across the fleet, and hands back a channel
/// that recombines partial derivations locally. Dead or unreachable
/// nodes are tolerated as long as at least `t` answer; below that the
/// connect fails closed with [`NetError::Quorum`]. The single authority
/// is the `n = t = 1` special case pointed at one share daemon.
pub struct ThresholdAuthority {
    addrs: Vec<SocketAddr>,
    setup: ThresholdSetup,
    max_frame: usize,
    read_timeout: Option<Duration>,
    fault_plans: HashMap<usize, FaultPlan>,
}

impl ThresholdAuthority {
    /// Points at a fleet of share-holder daemons, one address per node
    /// (so `addrs.len()` must equal `setup.n()`).
    ///
    /// # Panics
    ///
    /// When the address count disagrees with the setup.
    pub fn new(addrs: Vec<SocketAddr>, setup: ThresholdSetup) -> Self {
        assert_eq!(
            addrs.len(),
            setup.n(),
            "one share-holder address per node required"
        );
        Self {
            addrs,
            setup,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: None,
            fault_plans: HashMap::new(),
        }
    }

    /// Parses a `t=2@host:port,host:port,…` deployment spec (the
    /// `CRYPTONN_AUTHORITY` format): the quorum threshold, then the
    /// share-holder addresses; `n` is the address count.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] on an unparseable spec or an invalid
    /// `(n, t)` combination.
    pub fn from_spec(spec: &str) -> Result<Self, NetError> {
        let bad = |why: &str| NetError::Malformed(format!("threshold spec `{spec}`: {why}"));
        let (head, tail) = spec
            .split_once('@')
            .ok_or_else(|| bad("expected `t=<quorum>@addr,addr,…`"))?;
        let t: u32 = head
            .strip_prefix("t=")
            .ok_or_else(|| bad("expected a `t=<quorum>` prefix"))?
            .parse()
            .map_err(|_| bad("quorum is not a number"))?;
        let addrs = tail
            .split(',')
            .map(|a| a.trim().parse::<SocketAddr>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| bad("address does not parse"))?;
        let setup = ThresholdSetup::new(addrs.len() as u32, t)
            .map_err(|e| bad(&format!("invalid setup: {e}")))?;
        Ok(Self::new(addrs, setup))
    }

    /// The `(n, t)` deployment this connector expects.
    pub fn setup(&self) -> ThresholdSetup {
        self.setup
    }

    /// Replaces the frame cap used on share-holder connections.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Applies a read deadline per share-holder exchange, so one hung
    /// node degrades to an eviction instead of stalling derivation.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Injects a [`FaultPlan`] on the connection to the node at
    /// position `pos` (0-based, in address order). The plan starts
    /// counting after the connect handshake, so `kill_after_sends(k)`
    /// kills the node after `k` derivation requests. Test-oriented: the
    /// conformance suite uses this to kill `n − t` nodes mid-run.
    pub fn with_fault_plan(mut self, pos: usize, plan: FaultPlan) -> Self {
        self.fault_plans.insert(pos, plan);
        self
    }
}

/// Builds an [`AuthorityConnector`] from a deployment spec: a
/// `t=<quorum>@addr,addr,…` string selects a [`ThresholdAuthority`]
/// fleet, a bare `host:port` a single [`RemoteAuthority`].
///
/// # Errors
///
/// [`NetError::Malformed`] when the spec is neither form.
pub fn connector_from_spec(spec: &str) -> Result<Arc<dyn AuthorityConnector>, NetError> {
    if spec.contains('@') {
        return Ok(Arc::new(ThresholdAuthority::from_spec(spec)?));
    }
    let addr: SocketAddr = spec.parse().map_err(|_| {
        NetError::Malformed(format!(
            "authority spec `{spec}`: neither a `host:port` address nor a \
             `t=<quorum>@addr,…` threshold spec"
        ))
    })?;
    Ok(Arc::new(RemoteAuthority::new(addr)))
}

/// Builds the connector named by the `CRYPTONN_AUTHORITY` environment
/// variable (see [`connector_from_spec`] for the accepted forms),
/// falling back to a single [`RemoteAuthority`] at `default` when the
/// variable is unset.
///
/// # Errors
///
/// [`NetError::Malformed`] when the variable is set but unparseable.
pub fn connector_from_env(default: SocketAddr) -> Result<Arc<dyn AuthorityConnector>, NetError> {
    match std::env::var("CRYPTONN_AUTHORITY") {
        Ok(spec) => connector_from_spec(&spec),
        Err(_) => Ok(Arc::new(RemoteAuthority::new(default))),
    }
}

impl AuthorityConnector for ThresholdAuthority {
    fn connect(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError> {
        let need = self.setup.t();
        let mut params: Option<PublicParams> = None;
        let mut commitments: Option<Vec<Element>> = None;
        let mut nodes: Vec<Box<dyn ShareClient>> = Vec::new();
        for (pos, addr) in self.addrs.iter().enumerate() {
            let handshake = dial_share_node(*addr, self.max_frame, self.read_timeout, || Hello {
                session,
                peer: Peer::Server,
                config: config.clone(),
            });
            let (transport, node_params, info) = match handshake {
                Ok(ok) => ok,
                // A rejection is a disagreement about the session (bad
                // config, an index collision), not a dead peer — it
                // would reproduce on every retry, so fail loudly.
                Err(NetError::Rejected(why)) => return Err(NetError::Rejected(why)),
                // Anything else is a dead/unreachable node: threshold
                // mode exists to tolerate exactly this.
                Err(_) => continue,
            };
            if (info.n as usize, info.t as usize) != (self.setup.n(), self.setup.t()) {
                return Err(NetError::Rejected(format!(
                    "node at {addr} reports a {}-of-{} deployment, connector expects {}-of-{}",
                    info.t,
                    info.n,
                    self.setup.t(),
                    self.setup.n(),
                )));
            }
            match &params {
                Some(first) if *first != node_params => {
                    return Err(NetError::Rejected(format!(
                        "node at {addr} disagrees on the public parameters"
                    )));
                }
                Some(_) => {}
                None => params = Some(node_params),
            }
            match &commitments {
                Some(first) if *first != info.febo_commitments => {
                    return Err(NetError::Rejected(format!(
                        "node at {addr} disagrees on the share commitments"
                    )));
                }
                Some(_) => {}
                None => commitments = Some(info.febo_commitments),
            }
            let transport: Box<dyn Transport + Send> = match self.fault_plans.get(&pos) {
                Some(plan) => Box::new(FaultyTransport::new(transport, *plan)),
                None => Box::new(transport),
            };
            nodes.push(Box::new(TcpShareClient {
                index: info.index,
                transport,
            }));
        }
        if nodes.len() < need {
            return Err(NetError::Quorum {
                have: nodes.len(),
                need,
            });
        }
        let (params, commitments) = (
            params.expect("quorum met"),
            commitments.expect("quorum met"),
        );
        let group = SchnorrGroup::precomputed(config.level);
        let service = ThresholdKeyService::new(
            group,
            self.setup,
            params.febo_mpk.clone(),
            commitments,
            nodes,
        )
        .map_err(|e| NetError::Rejected(format!("threshold deployment rejected: {e}")))?;
        Ok((params, Box::new(ThresholdChannel { service })))
    }
}

/// Dials one share-holder and runs the connect handshake: `Hello` →
/// `PublicParams`, then `ShareRequest::Info` → `PartialKey::Info`.
fn dial_share_node(
    addr: SocketAddr,
    max_frame: usize,
    read_timeout: Option<Duration>,
    hello: impl FnOnce() -> Hello,
) -> Result<(TcpTransport, PublicParams, ShareInfo), NetError> {
    let mut transport = TcpTransport::connect(addr, max_frame)?;
    transport.set_read_timeout(read_timeout)?;
    transport.send(&NetMsg::Hello(hello()))?;
    let params = match transport.recv()? {
        Some(NetMsg::Msg(WireMessage::PublicParams(p))) => p,
        Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
        Some(_) => return Err(NetError::UnexpectedFrame("expected PublicParams")),
        None => return Err(NetError::Disconnected),
    };
    transport.send(&NetMsg::Msg(WireMessage::ShareRequest(ShareRequest::Info)))?;
    let info = match transport.recv()? {
        Some(NetMsg::Msg(WireMessage::PartialKey(PartialKey::Info(info)))) => info,
        Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
        Some(_) => return Err(NetError::UnexpectedFrame("expected ShareInfo")),
        None => return Err(NetError::Disconnected),
    };
    Ok((transport, params, info))
}

/// The [`AuthorityChannel`] of a threshold deployment: key requests
/// answered by local Lagrange recombination over the share-holder
/// fleet, behind the exact wire contract [`AuthoritySession::handle`]
/// implements — so the server session (and the key cache above it, which
/// therefore only ever holds aggregated keys) cannot tell a quorum from
/// a single authority.
struct ThresholdChannel {
    service: ThresholdKeyService,
}

impl AuthorityChannel for ThresholdChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        let dim_of = |r: &KeyRequest| match r {
            KeyRequest::FeipMpk(dim) | KeyRequest::Feip(FeipKeysRequest { dim, .. }) => Some(*dim),
            KeyRequest::Febo(_) => None,
        };
        if dim_of(&req) == Some(0) {
            return Ok(KeyResponse::Denied(
                "FEIP dimension must be positive".into(),
            ));
        }
        match req {
            KeyRequest::FeipMpk(dim) => {
                settle(self.service.feip_public_key(dim), KeyResponse::FeipMpk)
            }
            KeyRequest::Feip(FeipKeysRequest { dim, ys }) => {
                settle(self.service.derive_ip_keys(dim, &ys), KeyResponse::Feip)
            }
            KeyRequest::Febo(FeboKeysRequest { reqs }) => {
                settle(self.service.derive_bo_keys(&reqs), KeyResponse::Febo)
            }
        }
    }
}

/// Maps combiner outcomes onto the wire contract: refusals become
/// [`KeyResponse::Denied`] exactly as a single authority records them,
/// quorum loss fails closed as the typed [`ProtocolError::Quorum`], and
/// tampering beyond recovery is a hard transport-class failure — never
/// a silently wrong key.
fn settle<T>(
    result: Result<T, FeError>,
    ok: impl FnOnce(T) -> KeyResponse,
) -> Result<KeyResponse, ProtocolError> {
    match result {
        Ok(v) => Ok(ok(v)),
        Err(FeError::InsufficientShares { have, need }) => {
            Err(ProtocolError::Quorum { have, need })
        }
        Err(e @ (FeError::SharesTampered { .. } | FeError::Protocol(_))) => {
            Err(ProtocolError::Transport(e.to_string()))
        }
        Err(e) => Ok(KeyResponse::Denied(e.to_string())),
    }
}
