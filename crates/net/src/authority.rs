//! The key authority as a standalone networked service.
//!
//! [`AuthorityServer`] is the paper's trusted third party (Fig. 1) cut
//! loose from the training process: it listens on a socket, keys its
//! state by [`SessionId`], derives each session's master keys from the
//! session config on first contact, publishes [`PublicParams`], and
//! then serves the server's [`KeyRequest`] traffic over the framed
//! codec. The training server reaches it through an
//! [`AuthorityConnector`] — [`RemoteAuthority`] over TCP, or
//! [`LocalAuthority`] for in-process wiring — and the connection
//! implements the same [`AuthorityChannel`] hook the deterministic
//! runner and the replayer use, so no key-derivation logic forks
//! between transports.
//!
//! [`KeyRequest`]: cryptonn_protocol::KeyRequest

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use cryptonn_parallel::ThreadPool;
use cryptonn_protocol::{
    AuthorityChannel, AuthoritySession, KeyRequest, KeyResponse, ProtocolError, PublicParams,
    SessionConfig, SessionId, WireMessage,
};

use crate::error::NetError;
use crate::framing::DEFAULT_MAX_FRAME;
use crate::transport::{FrameRx, FrameTx, Hello, NetMsg, Peer, TcpTransport};

/// How a training server reaches the session's key authority: one call
/// per session, yielding the published parameters and the live
/// request/response channel.
pub trait AuthorityConnector: Send + Sync {
    /// Opens the authority link for `session` under `config`.
    ///
    /// # Errors
    ///
    /// Transport failures; the authority rejecting the session (e.g. a
    /// config that disagrees with an earlier connection).
    fn connect(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError>;
}

/// In-process authority wiring: each session gets its own
/// [`AuthoritySession`] behind a direct channel. The zero-network
/// arm — what the deterministic runner effectively uses — provided
/// here so a [`SessionServer`](crate::SessionServer) can run without a
/// separate authority daemon.
#[derive(Debug, Default)]
pub struct LocalAuthority;

struct DirectChannel(Arc<AuthoritySession>);

impl AuthorityChannel for DirectChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        Ok(self.0.handle(&req))
    }
}

impl AuthorityConnector for LocalAuthority {
    fn connect(
        &self,
        _session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError> {
        let authority = Arc::new(AuthoritySession::new(config));
        let params = authority.public_params_for(config);
        Ok((params, Box::new(DirectChannel(authority))))
    }
}

/// TCP connector to a running [`AuthorityServer`].
#[derive(Debug, Clone)]
pub struct RemoteAuthority {
    addr: SocketAddr,
    max_frame: usize,
}

impl RemoteAuthority {
    /// Points at an authority daemon.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Replaces the frame cap used on authority connections.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }
}

impl AuthorityConnector for RemoteAuthority {
    fn connect(
        &self,
        session: SessionId,
        config: &SessionConfig,
    ) -> Result<(PublicParams, Box<dyn AuthorityChannel>), NetError> {
        let mut transport = TcpTransport::connect(self.addr, self.max_frame)?;
        transport.send(&NetMsg::Hello(Hello {
            session,
            peer: Peer::Server,
            config: config.clone(),
        }))?;
        let params = match transport.recv()? {
            Some(NetMsg::Msg(WireMessage::PublicParams(p))) => p,
            Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
            Some(_) => return Err(NetError::UnexpectedFrame("expected PublicParams")),
            None => return Err(NetError::Disconnected),
        };
        Ok((params, Box::new(RemoteAuthorityChannel { transport })))
    }
}

/// The [`AuthorityChannel`] over a live authority connection: each
/// exchange is one request frame out, one response frame back.
struct RemoteAuthorityChannel {
    transport: TcpTransport,
}

impl AuthorityChannel for RemoteAuthorityChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        self.transport
            .send(&NetMsg::Msg(WireMessage::KeyRequest(req)))
            .map_err(|e| ProtocolError::Transport(e.to_string()))?;
        match self
            .transport
            .recv()
            .map_err(|e| ProtocolError::Transport(e.to_string()))?
        {
            Some(NetMsg::Msg(WireMessage::KeyResponse(resp))) => Ok(resp),
            Some(NetMsg::Reject(why)) => Err(ProtocolError::Transport(format!(
                "authority rejected the exchange: {why}"
            ))),
            Some(other) => Err(ProtocolError::Transport(format!(
                "authority sent an unexpected frame: {other:?}"
            ))),
            None => Err(ProtocolError::Transport(
                "authority closed the connection mid-session".into(),
            )),
        }
    }
}

/// Options for the authority daemon.
#[derive(Debug, Clone, Copy)]
pub struct AuthorityOptions {
    /// Bounded pool size for connection handlers.
    pub pool_threads: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
}

impl Default for AuthorityOptions {
    fn default() -> Self {
        Self {
            pool_threads: 16,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

struct AuthorityEntry {
    config: SessionConfig,
    session: Arc<AuthoritySession>,
    params: PublicParams,
}

type AuthorityRegistry = Arc<Mutex<HashMap<SessionId, AuthorityEntry>>>;

/// The networked key authority daemon: a session-keyed registry of
/// [`AuthoritySession`]s behind a TCP accept loop on a bounded pool.
pub struct AuthorityServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: AuthorityRegistry,
}

impl AuthorityServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(addr: &str, options: AuthorityOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry: AuthorityRegistry = Arc::new(Mutex::new(HashMap::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let pool = ThreadPool::new(options.pool_threads);
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = Arc::clone(&registry);
                    // `execute` blocks while the pool is saturated:
                    // backpressure on the accept loop rather than
                    // unbounded threads.
                    pool.execute(move || serve_authority_conn(stream, options, &registry));
                }
                // Dropping the pool joins the in-flight handlers.
            })
        };
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            registry,
        })
    }

    /// The bound address (use with [`RemoteAuthority::new`]).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently registered.
    pub fn session_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Stops accepting and waits for the accept loop. Live connections
    /// finish their current exchange and drop on the next read.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept wakes up.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AuthorityServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn serve_authority_conn(
    stream: TcpStream,
    options: AuthorityOptions,
    registry: &AuthorityRegistry,
) {
    let Ok(mut transport) = TcpTransport::new(stream, options.max_frame) else {
        return;
    };
    let hello = match transport.recv() {
        Ok(Some(NetMsg::Hello(h))) => h,
        Ok(_) | Err(_) => {
            let _ = transport.send(&NetMsg::Reject("expected a Hello frame".into()));
            return;
        }
    };
    // One authority state per session, derived deterministically from
    // the session config; later connections must agree bit-for-bit so
    // a mismatched peer cannot steer key derivation.
    let (session, params) = {
        let mut reg = registry.lock();
        match reg.get(&hello.session) {
            Some(entry) if entry.config != hello.config => {
                drop(reg);
                let _ = transport.send(&NetMsg::Reject(format!(
                    "{} already exists with a different config",
                    hello.session
                )));
                return;
            }
            Some(entry) => (Arc::clone(&entry.session), entry.params.clone()),
            None => {
                let session = Arc::new(AuthoritySession::new(&hello.config));
                let params = session.public_params_for(&hello.config);
                reg.insert(
                    hello.session,
                    AuthorityEntry {
                        config: hello.config.clone(),
                        session: Arc::clone(&session),
                        params: params.clone(),
                    },
                );
                (session, params)
            }
        }
    };
    if transport
        .send(&NetMsg::Msg(WireMessage::PublicParams(params)))
        .is_err()
    {
        return;
    }
    loop {
        match transport.recv() {
            Ok(Some(NetMsg::Msg(msg))) => match session.handle_message(&msg) {
                Ok(outs) => {
                    for ob in outs {
                        if transport.send(&NetMsg::Msg(ob.msg)).is_err() {
                            return;
                        }
                    }
                }
                Err(e) => {
                    let _ = transport.send(&NetMsg::Reject(e.to_string()));
                    return;
                }
            },
            Ok(Some(_)) => {
                let _ = transport.send(&NetMsg::Reject("unexpected frame".into()));
                return;
            }
            Ok(None) | Err(_) => return,
        }
    }
}
