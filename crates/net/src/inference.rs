//! The encrypted inference serving daemon.
//!
//! [`InferenceServer`] exposes one frozen trained model to many
//! concurrent predict clients over the framed transport:
//!
//! - **handshake** — clients open with the same `Hello` frame the
//!   training server uses; the config must match the serving config
//!   bit-for-bit (it fixes the group, the quantization and the model
//!   geometry the client encrypts against), and the server answers
//!   with the session's [`PublicParams`] so a predict client can be
//!   built from the wire alone;
//! - **request batching** — connection handlers pump `Predict` frames
//!   into one bounded queue; the single serving worker drains whatever
//!   is in flight (up to the coalescing cap) into one
//!   [`InferenceSession`] sweep, so concurrent clients' requests share
//!   wNAF recodings and a single modular inversion;
//! - **authority-free steady state** — the session wraps its authority
//!   channel in a
//!   [`CachingKeyService`](cryptonn_fe::CachingKeyService); after the
//!   first sweep the frozen model's keys are all cache hits
//!   ([`InferenceServer::cache_stats`] exposes the counters);
//! - **failure isolation** — serving is stateless per request: a
//!   client disconnecting (or submitting a malformed request) costs
//!   only its own connection, never the model or other clients.
//!
//! [`run_inference_client`] and [`InferenceClient`] are the data-owner
//! side: encrypt features, send a request, await the matching
//! prediction — with as many requests in flight as the caller wants.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use cryptonn_core::CryptoMlp;
use cryptonn_fe::KeyCacheStats;
use cryptonn_matrix::Matrix;
use cryptonn_parallel::ThreadPool;
use cryptonn_protocol::{
    ClientId, InferenceOptions, InferenceSession, Party, PredictRequest, Prediction, PublicParams,
    SessionConfig, SessionId, WireMessage,
};

use crate::authority::AuthorityConnector;
use crate::error::NetError;
use crate::framing::DEFAULT_MAX_FRAME;
use crate::transport::{FrameRx, FrameTx, Hello, NetMsg, Peer, TcpTransport, Transport};

/// Tuning for the serving daemon.
#[derive(Debug, Clone)]
pub struct InferenceServerOptions {
    /// Bounded pool size for connection handlers (one per live client
    /// connection); a saturated pool rejects new connections.
    pub pool_threads: usize,
    /// Bounded depth of the shared inbound request queue — the
    /// backpressure boundary between readers and the serving worker.
    pub queue_depth: usize,
    /// Frame cap per connection.
    pub max_frame: usize,
    /// The state machine's coalescing and key-cache knobs.
    pub session: InferenceOptions,
    /// On-disk directory for the fingerprinted BSGS table cache; `None`
    /// rebuilds tables in memory on every start.
    pub table_cache: Option<std::path::PathBuf>,
}

impl Default for InferenceServerOptions {
    fn default() -> Self {
        Self {
            pool_threads: 32,
            queue_depth: 64,
            max_frame: DEFAULT_MAX_FRAME,
            session: InferenceOptions::default(),
            table_cache: None,
        }
    }
}

enum Event {
    Msg(ClientId, Box<WireMessage>),
    Gone(ClientId),
}

type Conns = Arc<Mutex<HashMap<ClientId, Box<dyn FrameTx>>>>;

/// Serving counters, updated by the worker after every sweep.
#[derive(Debug, Default)]
struct ServingStats {
    served: AtomicU64,
    sweeps: AtomicU64,
    cache: Mutex<KeyCacheStats>,
}

/// The encrypted inference daemon: one frozen model, many concurrent
/// predict clients, coalesced secure sweeps. See the module docs for
/// the serving model.
pub struct InferenceServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    inbound: Option<SyncSender<Event>>,
    conns: Conns,
    stats: Arc<ServingStats>,
}

impl InferenceServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `model` — trained
    /// under `config` — reaching the key authority through `authority`.
    ///
    /// The authority link opens (and the session's public parameters
    /// are fetched) before the listener accepts anything, so a
    /// misconfigured authority fails fast here rather than on the first
    /// client.
    ///
    /// # Errors
    ///
    /// Bind failures; authority connection failures (surfaced as
    /// `io::Error` with the connector's message).
    pub fn start(
        addr: &str,
        session_id: SessionId,
        config: &SessionConfig,
        model: CryptoMlp,
        authority: Arc<dyn AuthorityConnector>,
        options: InferenceServerOptions,
    ) -> std::io::Result<Self> {
        let (params, link) = authority
            .connect(session_id, config)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut session = InferenceSession::new(&params, link, model, options.session);
        if let Some(dir) = &options.table_cache {
            session.attach_table_cache(dir.clone());
        }
        let params = Arc::new(params);

        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(ServingStats::default());
        let (inbound_tx, inbound_rx) = std::sync::mpsc::sync_channel(options.queue_depth.max(1));

        let worker = {
            let conns = Arc::clone(&conns);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || serving_worker(session, inbound_rx, conns, stats))
        };

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let config = config.clone();
            let inbound = inbound_tx.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(options.pool_threads);
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let slot = Arc::new(Mutex::new(Some(stream)));
                    let job_slot = Arc::clone(&slot);
                    let conns = Arc::clone(&conns);
                    let config = config.clone();
                    let params = Arc::clone(&params);
                    let inbound = inbound.clone();
                    let expected_session = session_id;
                    let max_frame = options.max_frame;
                    let accepted = pool.try_execute(move || {
                        if let Some(stream) = job_slot.lock().take() {
                            serve_predict_conn(
                                stream,
                                max_frame,
                                expected_session,
                                &config,
                                &params,
                                &conns,
                                &inbound,
                            );
                        }
                    });
                    if !accepted {
                        if let Some(stream) = slot.lock().take() {
                            if let Ok(mut t) = TcpTransport::new(stream, options.max_frame) {
                                let _ = t.send(&NetMsg::Reject("server at capacity".into()));
                            }
                        }
                    }
                }
                // Dropping the pool joins in-flight connection handlers.
            })
        };

        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
            worker: Some(worker),
            inbound: Some(inbound_tx),
            conns,
            stats,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::SeqCst)
    }

    /// Secure sweeps run so far (≤ served; the gap is the coalescing).
    pub fn sweeps(&self) -> u64 {
        self.stats.sweeps.load(Ordering::SeqCst)
    }

    /// The functional-key cache counters, as of the last sweep.
    pub fn cache_stats(&self) -> KeyCacheStats {
        *self.stats.cache.lock()
    }

    /// Live predict connections.
    pub fn live_clients(&self) -> usize {
        self.conns.lock().len()
    }

    /// Stops accepting, tears down live connections, and joins the
    /// accept loop and the serving worker.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().values_mut() {
            conn.close();
        }
        // Poke the listener so the blocking accept wakes up.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Handlers are joined; dropping our sender starves the worker.
        self.inbound.take();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_predict_conn(
    stream: TcpStream,
    max_frame: usize,
    expected_session: SessionId,
    config: &SessionConfig,
    params: &PublicParams,
    conns: &Conns,
    inbound: &SyncSender<Event>,
) {
    // A connection that never says Hello must not pin a pool worker
    // forever (a saturated pool would lock every future client out and
    // wedge shutdown): the handshake runs under a read deadline,
    // lifted once the peer identifies itself.
    let Ok(handshake_guard) = stream.try_clone() else {
        return;
    };
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let Ok(transport) = TcpTransport::new(stream, max_frame) else {
        return;
    };
    let (tx, mut rx) = Box::new(transport).split();
    let mut tx = Some(tx);
    let reject = |tx: &mut Option<Box<dyn FrameTx>>, why: String| {
        if let Some(mut tx) = tx.take() {
            let _ = tx.send(&NetMsg::Reject(why));
        }
    };

    let hello = match rx.recv() {
        Ok(Some(NetMsg::Hello(h))) => h,
        _ => {
            // Includes the deadline expiring: the frame read surfaces
            // the timeout as an I/O error.
            reject(&mut tx, "expected a Hello frame".into());
            return;
        }
    };
    // Identified: predict connections may then idle indefinitely.
    let _ = handshake_guard.set_read_timeout(None);
    let Peer::Client(client_id) = hello.peer else {
        reject(
            &mut tx,
            "only clients connect to the inference server".into(),
        );
        return;
    };
    if hello.session != expected_session {
        reject(
            &mut tx,
            format!(
                "this server serves {expected_session}, not {}",
                hello.session
            ),
        );
        return;
    }
    if hello.config != *config {
        reject(
            &mut tx,
            format!("{expected_session} is served with a different config"),
        );
        return;
    }

    // Register this connection's writer and relay the session's public
    // parameters (fetched from the authority once, at server start) so
    // the predict client can build its encryptor from the wire alone.
    {
        let mut conns = conns.lock();
        if conns.contains_key(&client_id) {
            drop(conns);
            reject(
                &mut tx,
                format!("{client_id} is already connected to {expected_session}"),
            );
            return;
        }
        let mut tx = tx.take().expect("writer not yet consumed");
        if tx
            .send(&NetMsg::Msg(WireMessage::PublicParams(params.clone())))
            .is_err()
        {
            return;
        }
        conns.insert(client_id, tx);
    }

    let cleanup = || {
        if let Some(mut conn) = conns.lock().remove(&client_id) {
            conn.close();
        }
    };

    loop {
        match rx.recv() {
            Ok(Some(NetMsg::Msg(msg))) => {
                if inbound.send(Event::Msg(client_id, Box::new(msg))).is_err() {
                    cleanup();
                    return;
                }
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                let _ = inbound.send(Event::Gone(client_id));
                cleanup();
                return;
            }
        }
    }
}

fn serving_worker(
    mut session: InferenceSession,
    inbound: Receiver<Event>,
    conns: Conns,
    stats: Arc<ServingStats>,
) {
    let route = |conns: &Conns, outs: Vec<cryptonn_protocol::Outbound>| {
        let mut conns = conns.lock();
        for ob in outs {
            let Party::Client(id) = ob.to else { continue };
            if let Some(conn) = conns.get_mut(&ClientId(id)) {
                if conn.send(&NetMsg::Msg(ob.msg)).is_err() {
                    // The reader side will report Gone; just drop it.
                    if let Some(mut dead) = conns.remove(&ClientId(id)) {
                        dead.close();
                    }
                }
            }
        }
    };
    let publish = |session: &InferenceSession, stats: &ServingStats| {
        stats.served.store(session.served(), Ordering::SeqCst);
        stats.sweeps.store(session.sweeps(), Ordering::SeqCst);
        *stats.cache.lock() = session.cache_stats();
    };

    loop {
        // Block for the first event, then drain whatever else is
        // already in flight — that momentary backlog is exactly the
        // coalescing window the session sweeps together.
        let first = match inbound.recv() {
            Ok(event) => event,
            Err(_) => return, // server shut down
        };
        let mut events = vec![first];
        while let Ok(event) = inbound.try_recv() {
            events.push(event);
        }
        let mut outs = Vec::new();
        for event in events {
            match event {
                Event::Gone(client) => {
                    if let Some(mut conn) = conns.lock().remove(&client) {
                        conn.close();
                    }
                }
                Event::Msg(client, msg) => match session.handle_message(client, &msg) {
                    Ok(o) => outs.extend(o),
                    Err(e) => {
                        // Malformed traffic costs the offender its
                        // connection; the model and everyone else's
                        // requests are untouched.
                        if let Some(mut conn) = conns.lock().remove(&client) {
                            let _ = conn.send(&NetMsg::Reject(e.to_string()));
                            conn.close();
                        }
                    }
                },
            }
        }
        // Serve the remainder of the window.
        match session.flush() {
            Ok(o) => outs.extend(o),
            Err(e) => {
                // A sweep failure (an unreachable authority, a broken
                // key response) is not attributable to one client: the
                // drained window is lost, so tell everyone and drop
                // the connections rather than leave them waiting.
                let mut conns = conns.lock();
                for conn in conns.values_mut() {
                    let _ = conn.send(&NetMsg::Reject(format!("serving sweep failed: {e}")));
                    conn.close();
                }
                conns.clear();
            }
        }
        // Publish before routing: by the time any client observes a
        // response, the counters already cover the sweep it came from.
        publish(&session, &stats);
        route(&conns, outs);
    }
}

// ------------------------------------------------------------- client

/// A predict client: encrypts features under the wire-delivered public
/// parameters and exchanges `Predict`/`Prediction` frames, with any
/// number of requests in flight.
#[derive(Debug)]
pub struct InferenceClient {
    transport: TcpTransport,
    encryptor: cryptonn_core::Client,
    next_id: u64,
}

impl InferenceClient {
    /// Connects to a serving daemon, handshakes, and builds the
    /// encryptor from the echoed session parameters.
    ///
    /// The `config` must equal the serving config bit-for-bit; `seed`
    /// drives this client's encryption randomness.
    ///
    /// # Errors
    ///
    /// - [`NetError::Rejected`] if the server refuses (wrong session,
    ///   config mismatch, duplicate client id, capacity);
    /// - connection and framing failures.
    pub fn connect(
        addr: SocketAddr,
        session: SessionId,
        id: ClientId,
        config: &SessionConfig,
        seed: u64,
        max_frame: usize,
    ) -> Result<Self, NetError> {
        Self::connect_with_wire(
            addr,
            session,
            id,
            config,
            seed,
            max_frame,
            cryptonn_wire::WireFormat::from_env(),
        )
    }

    /// [`connect`](Self::connect) with an explicit wire format instead
    /// of the `CRYPTONN_WIRE` process default. The format is pinned
    /// *before* the Hello goes out, so the daemon sees this client's
    /// dialect from its very first frame and mirrors it on every reply
    /// — mixed-format client populations against one daemon are just
    /// different arguments here.
    ///
    /// # Errors
    ///
    /// As [`connect`](Self::connect).
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_wire(
        addr: SocketAddr,
        session: SessionId,
        id: ClientId,
        config: &SessionConfig,
        seed: u64,
        max_frame: usize,
        wire: cryptonn_wire::WireFormat,
    ) -> Result<Self, NetError> {
        let mut transport = TcpTransport::connect(addr, max_frame).map_err(NetError::from)?;
        transport.set_wire_format(wire);
        transport.send(&NetMsg::Hello(Hello {
            session,
            peer: Peer::Client(id),
            config: config.clone(),
        }))?;
        let params = match transport.recv()? {
            Some(NetMsg::Msg(WireMessage::PublicParams(p))) => p,
            Some(NetMsg::Reject(why)) => return Err(NetError::Rejected(why)),
            Some(_) => return Err(NetError::UnexpectedFrame("expected PublicParams")),
            None => return Err(NetError::Disconnected),
        };
        let encryptor = cryptonn_core::Client::from_keys(
            params.x_mpk.clone(),
            params.y_mpk.clone(),
            params.febo_mpk.clone(),
            params.fp,
            seed,
        );
        Ok(Self {
            transport,
            encryptor,
            next_id: 0,
        })
    }

    /// Encrypts `x` (`batch × features`) and sends it as one predict
    /// request, returning the request id without waiting.
    ///
    /// # Errors
    ///
    /// Encryption shape mismatches; send failures.
    pub fn send_request(&mut self, x: &Matrix<f64>) -> Result<u64, NetError> {
        let batch = self
            .encryptor
            .encrypt_features(x)
            .map_err(|e| NetError::Protocol(e.into()))?;
        self.send_encrypted(batch)
    }

    /// Sends an already-encrypted feature batch (the bench path, which
    /// pre-encrypts outside the timed loop).
    ///
    /// # Errors
    ///
    /// Send failures.
    pub fn send_encrypted(
        &mut self,
        batch: cryptonn_core::EncryptedBatch,
    ) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.transport
            .send(&NetMsg::Msg(WireMessage::Predict(PredictRequest {
                id,
                batch,
            })))?;
        Ok(id)
    }

    /// Receives the next prediction frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] if the server aborts;
    /// [`NetError::Disconnected`] on a closed connection; framing
    /// failures.
    pub fn recv_prediction(&mut self) -> Result<Prediction, NetError> {
        match self.transport.recv()? {
            Some(NetMsg::Msg(WireMessage::Prediction(p))) => Ok(p),
            Some(NetMsg::Reject(why)) => Err(NetError::Rejected(why)),
            Some(_) => Err(NetError::UnexpectedFrame("expected a Prediction")),
            None => Err(NetError::Disconnected),
        }
    }

    /// One synchronous round trip: encrypt, send, await the matching
    /// prediction.
    ///
    /// # Errors
    ///
    /// As [`send_request`](Self::send_request) and
    /// [`recv_prediction`](Self::recv_prediction); an id mismatch is
    /// [`NetError::UnexpectedFrame`].
    pub fn predict(&mut self, x: &Matrix<f64>) -> Result<Matrix<f64>, NetError> {
        let id = self.send_request(x)?;
        let p = self.recv_prediction()?;
        if p.id != id {
            return Err(NetError::UnexpectedFrame("prediction for a different id"));
        }
        Ok(p.outputs)
    }

    /// The encryptor's quantization (for callers pre-encrypting).
    pub fn encryptor_mut(&mut self) -> &mut cryptonn_core::Client {
        &mut self.encryptor
    }
}

/// Convenience driver: connect, predict on every matrix in `inputs`
/// with up to `window` requests in flight, and return the outputs in
/// order.
///
/// # Errors
///
/// As [`InferenceClient`]'s methods.
pub fn run_inference_client(
    addr: SocketAddr,
    session: SessionId,
    id: ClientId,
    config: &SessionConfig,
    seed: u64,
    inputs: &[Matrix<f64>],
    window: usize,
) -> Result<Vec<Matrix<f64>>, NetError> {
    let mut client = InferenceClient::connect(addr, session, id, config, seed, DEFAULT_MAX_FRAME)?;
    let window = window.max(1);
    let mut results: Vec<Option<Matrix<f64>>> = vec![None; inputs.len()];
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < inputs.len() {
        while sent < inputs.len() && sent - received < window {
            client.send_request(&inputs[sent])?;
            sent += 1;
        }
        let p = client.recv_prediction()?;
        let idx = usize::try_from(p.id).map_err(|_| NetError::UnexpectedFrame("id overflow"))?;
        if idx >= inputs.len() || results[idx].is_some() {
            return Err(NetError::UnexpectedFrame("prediction for an unknown id"));
        }
        results[idx] = Some(p.outputs);
        received += 1;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("all received"))
        .collect())
}
