//! Fault injection at frame boundaries: the churn test harness.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and applies a
//! [`FaultPlan`] — scripted kill points (after N sends, N receives, or
//! N encrypted batches on the wire), frame delays, and a seeded-random
//! mode — *at frame boundaries only*, so every injected fault is one a
//! real network can produce: a frame either crossed the wire whole or
//! it never existed. A kill severs the underlying connection (the peer
//! observes a disconnect, exactly as if the process died), and both
//! halves of a split transport observe it.
//!
//! The plan is deterministic: a scripted plan kills at exactly the
//! configured frame, and the random mode draws from a seeded
//! [`StdRng`], so a failing churn test replays bit-identically from
//! its seed.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cryptonn_protocol::WireMessage;

use crate::error::NetError;
use crate::transport::{FrameRx, FrameTx, NetMsg, Transport};

/// Seeded-random fault mode: at every frame boundary an independent
/// draw decides whether the connection dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFaults {
    /// RNG seed; the same seed replays the same fault sequence.
    pub seed: u64,
    /// Per-frame-boundary probability of killing the connection.
    pub kill_prob: f64,
}

/// What to inject, and when. The default plan injects nothing — a
/// transparent wrapper — so reconnect factories can reuse one transport
/// type for faulty first attempts and clean retries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Sever the connection once this many frames have been sent.
    pub kill_after_sends: Option<u64>,
    /// Sever the connection once this many frames have been received.
    pub kill_after_recvs: Option<u64>,
    /// Sever the connection once this many encrypted batch frames
    /// (`Batch`/`ImageBatch`) have been sent — "drop mid-epoch".
    pub kill_after_batches: Option<u64>,
    /// Sleep this long before every `every`-th sent frame, as
    /// `(every, delay)` — reorder/latency pressure without loss.
    pub delay_every_sends: Option<(u64, Duration)>,
    /// Seeded-random kills layered on top of the scripted points.
    pub random: Option<RandomFaults>,
}

impl FaultPlan {
    /// A plan that severs the connection after `n` encrypted batch
    /// frames have been sent.
    pub fn kill_after_batches(n: u64) -> Self {
        Self {
            kill_after_batches: Some(n),
            ..Self::default()
        }
    }

    /// A plan that severs the connection after `n` sent frames of any
    /// kind.
    pub fn kill_after_sends(n: u64) -> Self {
        Self {
            kill_after_sends: Some(n),
            ..Self::default()
        }
    }

    /// A seeded-random plan: every frame boundary kills the connection
    /// with probability `kill_prob`.
    pub fn random(seed: u64, kill_prob: f64) -> Self {
        Self {
            random: Some(RandomFaults { seed, kill_prob }),
            ..Self::default()
        }
    }
}

/// Shared fault state: both halves of a split transport consult (and
/// update) the same counters, so a kill triggered on the send side is
/// observed by the receive side too.
#[derive(Debug)]
struct FaultCore {
    plan: FaultPlan,
    rng: Option<StdRng>,
    killed: bool,
    sends: u64,
    recvs: u64,
    batches_sent: u64,
}

impl FaultCore {
    fn new(plan: FaultPlan) -> Self {
        let rng = plan.random.map(|r| StdRng::seed_from_u64(r.seed));
        Self {
            plan,
            rng,
            killed: false,
            sends: 0,
            recvs: 0,
            batches_sent: 0,
        }
    }

    fn random_says_kill(&mut self) -> bool {
        match (self.plan.random, &mut self.rng) {
            (Some(r), Some(rng)) => rng.random::<f64>() < r.kill_prob,
            _ => false,
        }
    }

    /// Records a completed send; returns true if the plan kills the
    /// connection at this boundary.
    fn after_send(&mut self, msg: &NetMsg) -> bool {
        self.sends += 1;
        if matches!(
            msg,
            NetMsg::Msg(WireMessage::Batch(_)) | NetMsg::Msg(WireMessage::ImageBatch(_))
        ) {
            self.batches_sent += 1;
        }
        let scripted = self.plan.kill_after_sends.is_some_and(|n| self.sends >= n)
            || self
                .plan
                .kill_after_batches
                .is_some_and(|n| self.batches_sent >= n);
        scripted || self.random_says_kill()
    }

    /// Records a completed receive; returns true if the plan kills the
    /// connection at this boundary.
    fn after_recv(&mut self) -> bool {
        self.recvs += 1;
        self.plan.kill_after_recvs.is_some_and(|n| self.recvs >= n) || self.random_says_kill()
    }

    fn delay_for_send(&self) -> Option<Duration> {
        let (every, delay) = self.plan.delay_every_sends?;
        if every > 0 && (self.sends + 1).is_multiple_of(every) {
            Some(delay)
        } else {
            None
        }
    }
}

type SharedCore = Arc<Mutex<FaultCore>>;

/// A read-only view of a [`FaultyTransport`]'s counters, alive after
/// the transport itself was consumed by a driver — the test's probe
/// into what actually happened on the wire.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    core: SharedCore,
}

impl FaultHandle {
    /// Frames sent so far.
    pub fn sends(&self) -> u64 {
        self.core.lock().sends
    }

    /// Frames received so far.
    pub fn recvs(&self) -> u64 {
        self.core.lock().recvs
    }

    /// Encrypted batch frames sent so far.
    pub fn batches_sent(&self) -> u64 {
        self.core.lock().batches_sent
    }

    /// True once the plan severed the connection.
    pub fn killed(&self) -> bool {
        self.core.lock().killed
    }
}

/// A [`Transport`] decorator that injects the faults of a [`FaultPlan`]
/// at frame boundaries. See the module docs.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    core: SharedCore,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        Self {
            inner,
            core: Arc::new(Mutex::new(FaultCore::new(plan))),
        }
    }

    /// A counter probe that outlives the transport.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            core: Arc::clone(&self.core),
        }
    }
}

/// The kill itself: mark the shared state, sever the underlying
/// connection, and surface the same error a real dead socket would.
fn kill(core: &SharedCore, close: &mut dyn FnMut()) {
    core.lock().killed = true;
    close();
}

impl<T: Transport> FrameTx for FaultyTransport<T> {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        if self.core.lock().killed {
            return Err(NetError::Disconnected);
        }
        if let Some(delay) = self.core.lock().delay_for_send() {
            std::thread::sleep(delay);
        }
        self.inner.send(msg)?;
        if self.core.lock().after_send(msg) {
            kill(&self.core, &mut || self.inner.close());
            return Err(NetError::Disconnected);
        }
        Ok(())
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

impl<T: Transport> FrameRx for FaultyTransport<T> {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        if self.core.lock().killed {
            return Ok(None);
        }
        let frame = self.inner.recv()?;
        if frame.is_some() && self.core.lock().after_recv() {
            kill(&self.core, &mut || self.inner.close());
            return Ok(None);
        }
        Ok(frame)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let (tx, rx) = Box::new(self.inner).split();
        (
            Box::new(FaultyTx {
                inner: tx,
                core: Arc::clone(&self.core),
            }),
            Box::new(FaultyRx {
                inner: rx,
                core: self.core,
            }),
        )
    }
}

struct FaultyTx {
    inner: Box<dyn FrameTx>,
    core: SharedCore,
}

impl FrameTx for FaultyTx {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        if self.core.lock().killed {
            return Err(NetError::Disconnected);
        }
        if let Some(delay) = self.core.lock().delay_for_send() {
            std::thread::sleep(delay);
        }
        self.inner.send(msg)?;
        if self.core.lock().after_send(msg) {
            kill(&self.core, &mut || self.inner.close());
            return Err(NetError::Disconnected);
        }
        Ok(())
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

struct FaultyRx {
    inner: Box<dyn FrameRx>,
    core: SharedCore,
}

impl FrameRx for FaultyRx {
    fn recv(&mut self) -> Result<Option<NetMsg>, NetError> {
        if self.core.lock().killed {
            return Ok(None);
        }
        let frame = self.inner.recv()?;
        if frame.is_some() && self.core.lock().after_recv() {
            // The receive half cannot close the underlying connection;
            // marking the shared state killed makes the send half
            // refuse every later frame, and dropping the halves (the
            // driver's reaction to a dead link) severs it for the peer.
            self.core.lock().killed = true;
            return Ok(None);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mem_pair_default;

    #[test]
    fn default_plan_is_transparent() {
        let (a, mut b) = mem_pair_default();
        let mut a = FaultyTransport::new(a, FaultPlan::default());
        let handle = a.handle();
        for _ in 0..5 {
            a.send(&NetMsg::Reject("ping".into())).unwrap();
            assert_eq!(b.recv().unwrap(), Some(NetMsg::Reject("ping".into())));
        }
        assert_eq!(handle.sends(), 5);
        assert!(!handle.killed());
    }

    #[test]
    fn scripted_kill_severs_after_exactly_n_sends() {
        let (a, mut b) = mem_pair_default();
        let mut a = FaultyTransport::new(a, FaultPlan::kill_after_sends(2));
        let handle = a.handle();
        a.send(&NetMsg::Reject("1".into())).unwrap();
        // The second frame still crosses the wire; the connection dies
        // at the boundary after it.
        assert!(matches!(
            a.send(&NetMsg::Reject("2".into())),
            Err(NetError::Disconnected)
        ));
        assert!(handle.killed());
        assert!(matches!(
            a.send(&NetMsg::Reject("3".into())),
            Err(NetError::Disconnected)
        ));
        assert_eq!(b.recv().unwrap(), Some(NetMsg::Reject("1".into())));
        assert_eq!(b.recv().unwrap(), Some(NetMsg::Reject("2".into())));
        assert_eq!(b.recv().unwrap(), None, "peer observes the severed link");
        assert_eq!(handle.sends(), 2);
    }

    #[test]
    fn kill_is_shared_across_split_halves() {
        let (a, mut b) = mem_pair_default();
        let faulty = FaultyTransport::new(a, FaultPlan::kill_after_sends(1));
        let handle = faulty.handle();
        let (mut tx, mut rx) = Box::new(faulty).split();
        assert!(matches!(
            tx.send(&NetMsg::Reject("only".into())),
            Err(NetError::Disconnected)
        ));
        // The receive half sees the kill without touching the wire.
        assert_eq!(rx.recv().unwrap(), None);
        assert!(handle.killed());
        assert_eq!(b.recv().unwrap(), Some(NetMsg::Reject("only".into())));
    }

    #[test]
    fn seeded_random_plan_replays_identically() {
        let run = |seed: u64| -> (u64, bool) {
            let (a, _b) = mem_pair_default();
            let mut a = FaultyTransport::new(a, FaultPlan::random(seed, 0.3));
            let handle = a.handle();
            for i in 0..20 {
                if a.send(&NetMsg::Reject(format!("{i}"))).is_err() {
                    break;
                }
            }
            (handle.sends(), handle.killed())
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
    }
}
