//! # cryptonn-net
//!
//! The transport layer under the CryptoNN session protocol: the
//! paper's Fig. 1 topology — many data owners, one training server,
//! one key authority — over real sockets.
//!
//! - [`framing`] — the length-prefixed codec: 4-byte big-endian length
//!   plus a serde-JSON payload, with a configurable cap and typed
//!   rejection of oversized, truncated, and garbage frames.
//! - [`transport`] — [`Transport`]: framed, splittable message pipes,
//!   implemented by `std::net` TCP ([`TcpTransport`]) and an in-memory
//!   channel pair ([`mem_pair`]) that moves the same encoded bytes.
//! - [`codec`] — the length-prefixed codec reworked for nonblocking
//!   I/O: [`FrameDecoder`] reassembles frames from arbitrary partial
//!   reads, [`OutboundQueue`] survives short writes under a byte
//!   bound — both proven equivalent to the blocking codec by the
//!   `codec_proptests` suite.
//! - [`reactor`] — [`Reactor`]: a hand-rolled readiness-driven loop
//!   (epoll on Linux, poll fallback; `CRYPTONN_FORCE_POLL=1` pins the
//!   fallback) multiplexing every connection on one thread, with a
//!   self-pipe command queue for off-loop senders, per-connection
//!   backpressure in both directions, and handshake/idle timeouts
//!   (DESIGN.md §15).
//! - [`server`] — [`SessionServer`]: the concurrent multi-session
//!   daemon — a [`SessionId`]-keyed registry, thread-per-connection on
//!   a bounded [`ThreadPool`](cryptonn_parallel::ThreadPool), bounded
//!   per-session inbound queues for backpressure, failure isolation
//!   per session, and (with [`ServerOptions::durability`]) per-session
//!   write-ahead ledgers plus checkpoints that let a restarted daemon
//!   resume interrupted sessions bit-identically (DESIGN.md §14).
//!   [`ServerOptions::transport`] (or `CRYPTONN_TRANSPORT=reactor`)
//!   swaps the accept path onto the reactor; thread-per-connection
//!   stays the default.
//! - [`fault`] — [`FaultyTransport`]: deterministic fault injection at
//!   frame boundaries (scripted and seeded-random kill points, frame
//!   delays) — the churn test harness.
//! - [`authority`] — [`AuthorityServer`]: the key authority as its own
//!   networked service, plus the [`AuthorityConnector`] abstraction
//!   ([`RemoteAuthority`] / [`LocalAuthority`]) the training server
//!   uses to reach it.
//! - [`client`] — [`run_client`]: the data-owner driver, and
//!   [`run_client_resumable`]: the reconnecting variant that rides out
//!   connection loss via the server's `Resume` barrier.
//! - [`inference`] — [`InferenceServer`]: encrypted prediction serving
//!   against a frozen trained model — concurrent predict clients,
//!   request coalescing into shared secure sweeps, and a functional-key
//!   cache that makes the steady state authority-free (DESIGN.md §12).
//!
//! Every daemon and driver pumps the *same* role state machines as the
//! in-process [`TrainingSessionRunner`](cryptonn_protocol::TrainingSessionRunner)
//! and the transcript replayer
//! (`cryptonn-protocol`), so a session trained over TCP loopback
//! produces weights bit-identical to the deterministic in-process run
//! on the same config and dataset.
//!
//! ## Example: full loopback topology
//!
//! ```
//! use std::sync::Arc;
//! use cryptonn_core::Objective;
//! use cryptonn_data::clinic_dataset;
//! use cryptonn_parallel::Parallelism;
//! use cryptonn_protocol::{
//!     mlp_session_config, round_robin_shards, ClientId, ClientSession, MlpSpec, SessionId,
//! };
//! use cryptonn_net::{
//!     run_client, AuthorityOptions, AuthorityServer, RemoteAuthority, ServerOptions,
//!     SessionServer, TcpTransport, DEFAULT_MAX_FRAME,
//! };
//!
//! // Daemons: key authority and multi-session training server.
//! let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())?;
//! let server = SessionServer::start(
//!     "127.0.0.1:0",
//!     Arc::new(RemoteAuthority::new(authority.local_addr())),
//!     ServerOptions::default(),
//! )?;
//!
//! // One two-client session over the clinic toy task.
//! let data = clinic_dataset(12, 5);
//! let spec = MlpSpec {
//!     feature_dim: data.feature_dim(),
//!     hidden: vec![4],
//!     classes: data.classes(),
//!     objective: Objective::SoftmaxCrossEntropy,
//! };
//! let config = mlp_session_config(spec, 2, 1, 6, 0.5);
//! let shards = round_robin_shards(&data, 6, 2);
//! let session = SessionId(1);
//! let addr = server.local_addr();
//! let workers: Vec<_> = shards
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, shard)| {
//!         let config = config.clone();
//!         std::thread::spawn(move || {
//!             let sm = ClientSession::new(
//!                 ClientId(i as u32),
//!                 config.client_seed_base + i as u64,
//!                 Parallelism::Serial,
//!                 shard,
//!             );
//!             let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME).unwrap();
//!             run_client(transport, session, sm, &config).unwrap()
//!         })
//!     })
//!     .collect();
//! let summaries: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
//! assert_eq!(summaries[0], summaries[1]); // every member sees the same model
//! assert_eq!(summaries[0].steps, 2);
//! server.shutdown();
//! authority.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod authority;
pub mod client;
pub mod codec;
pub mod fault;
pub mod fleet;
pub mod framing;
pub mod inference;
pub mod reactor;
pub mod server;
pub mod transport;

mod error;

pub use authority::{
    connector_from_env, connector_from_spec, AuthorityConnector, AuthorityOptions, AuthorityServer,
    LocalAuthority, RemoteAuthority, TcpShareClient, ThresholdAuthority,
};
pub use client::{run_client, run_client_resumable};
pub use codec::{FrameDecoder, OutboundQueue, WriteProgress};
pub use cryptonn_wire::{FormatCell, WireFormat};
pub use error::NetError;
pub use fault::{FaultHandle, FaultPlan, FaultyTransport, RandomFaults};
pub use fleet::{FleetOptions, InferenceFleet};
pub use framing::{
    encode_frame, encode_frame_fmt, encode_frame_into, read_frame, read_frame_sniff, write_frame,
    DEFAULT_MAX_FRAME, FRAME_HEADER,
};
pub use inference::{
    run_inference_client, InferenceClient, InferenceServer, InferenceServerOptions,
};
pub use reactor::{
    ConnId, Reactor, ReactorApp, ReactorConnTx, ReactorCtx, ReactorHandle, ReactorOptions,
    ReactorStats,
};
pub use server::{ResumedSession, ServerOptions, SessionOutcomeKind, SessionServer, TransportMode};
pub use transport::{
    mem_pair, mem_pair_default, FrameRx, FrameTx, Hello, MemTransport, NetMsg, Peer, TcpTransport,
    Transport,
};

// Re-exported so driver code built on this crate needs only one import
// for the session-layer vocabulary it wires together.
pub use cryptonn_protocol::{SessionConfig, SessionId};
