//! A hand-rolled readiness-driven reactor: one thread, one `epoll`
//! instance, thousands of framed connections.
//!
//! The thread-per-connection transport pins one pool thread per live
//! socket, so its pool size caps concurrency. The reactor inverts
//! that: every connection is nonblocking, a single loop thread waits
//! for readiness (`epoll` on Linux, portable `poll(2)` otherwise — no
//! external async runtime), and per-connection state is nothing but an
//! incremental [`FrameDecoder`] and a bounded [`OutboundQueue`]. The
//! protocol state machines never know the difference: the loop hands
//! the *application* ([`ReactorApp`]) whole decoded [`NetMsg`] frames,
//! exactly what a blocking `recv` would have produced.
//!
//! ## Structure
//!
//! - **Poller** — `epoll` via direct FFI (no `libc` dependency is
//!   reachable offline), level-triggered; a `poll(2)` fallback rebuilds
//!   its fd array per wait and is selectable at runtime with
//!   `CRYPTONN_FORCE_POLL=1` (it also engages automatically where
//!   `epoll` is unavailable).
//! - **Waker** — a nonblocking `UnixStream` self-pipe. Worker threads
//!   push commands (outbound frames, closes, nudges) into a shared
//!   queue through a [`ReactorHandle`] and write one byte to the pipe;
//!   the loop drains both. [`ReactorConnTx`] wraps that as a
//!   [`FrameTx`], so session workers address reactor connections
//!   through the same trait as pooled ones.
//! - **Backpressure, inbound** — when the app cannot take a frame (its
//!   worker queue is full, signalled by returning the frame from
//!   [`ReactorApp::on_frame`]), the loop *parks* the frame, drops read
//!   interest on that connection (TCP backpressure does the rest), and
//!   retries on every tick and nudge.
//! - **Backpressure, outbound** — each connection's [`OutboundQueue`]
//!   is byte-bounded; a peer that stops draining its socket overflows
//!   it and is disconnected, so one slow consumer can never hold the
//!   daemon's memory hostage.
//! - **Timeouts** — a connection that has not completed its handshake
//!   (the app calls [`ReactorCtx::set_handshaken`] when it does) is
//!   closed after `handshake_timeout`; an optional `idle_timeout`
//!   reaps handshaken connections with no traffic. Both are enforced
//!   by a coarse tick, not per-connection timers.
//!
//! The connection-scale smoke test (`tests/reactor_scale.rs`) drives
//! ≥1024 concurrent framed connections through one loop thread and
//! checks bit-identical service; DESIGN.md §15 is the architecture
//! note.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::codec::{FrameDecoder, OutboundQueue, WriteProgress};
use crate::error::NetError;
use crate::framing::{encode_frame_fmt, DEFAULT_MAX_FRAME};
use crate::transport::{FrameTx, NetMsg};
use cryptonn_wire::WireFormat;

// ------------------------------------------------------------ poller

/// Readiness flags for one registered fd.
#[derive(Debug, Clone, Copy)]
struct Readiness {
    token: u64,
    readable: bool,
    writable: bool,
    hangup: bool,
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use std::os::raw::c_int;

    // The kernel packs epoll_event to 12 bytes only on x86; everywhere
    // else (aarch64 included) it is a regular 16-byte struct with
    // `data` at offset 8. Mirror libc's per-arch gate so epoll_wait
    // writes entries with the stride we allocate.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    unsafe extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

mod poll_sys {
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    unsafe extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// The readiness backend: `epoll` where available (interest registered
/// incrementally with the kernel), else `poll(2)` (the interest set is
/// rebuilt from registrations on every wait).
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: std::os::fd::OwnedFd,
        events: Vec<epoll_sys::EpollEvent>,
    },
    Poll {
        /// `fd -> (token, want_read, want_write)`, insertion-ordered.
        registered: Vec<(RawFd, u64, bool, bool)>,
    },
}

impl Poller {
    fn new() -> std::io::Result<Self> {
        let force_poll = std::env::var("CRYPTONN_FORCE_POLL").is_ok_and(|v| v == "1");
        #[cfg(target_os = "linux")]
        if !force_poll {
            let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                let epfd =
                    unsafe { <std::os::fd::OwnedFd as std::os::fd::FromRawFd>::from_raw_fd(epfd) };
                return Ok(Poller::Epoll {
                    epfd,
                    events: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; 1024],
                });
            }
            // epoll unavailable (exotic kernel config): fall through.
        }
        let _ = force_poll;
        Ok(Poller::Poll {
            registered: Vec::new(),
        })
    }

    /// Which backend is live — surfaced in stats so tests can assert
    /// the fallback actually engaged.
    fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { .. } => "epoll",
            Poller::Poll { .. } => "poll",
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        epfd: RawFd,
        op: std::os::raw::c_int,
        fd: RawFd,
        mask: u32,
        token: u64,
    ) -> std::io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: mask,
            data: token,
        };
        let rc = unsafe { epoll_sys::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }

    #[cfg(target_os = "linux")]
    fn mask(want_read: bool, want_write: bool) -> u32 {
        let mut m = 0;
        if want_read {
            m |= epoll_sys::EPOLLIN;
        }
        if want_write {
            m |= epoll_sys::EPOLLOUT;
        }
        m
    }

    fn add(
        &mut self,
        fd: RawFd,
        token: u64,
        want_read: bool,
        want_write: bool,
    ) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => Self::epoll_ctl(
                epfd.as_raw_fd(),
                epoll_sys::EPOLL_CTL_ADD,
                fd,
                Self::mask(want_read, want_write),
                token,
            ),
            Poller::Poll { registered } => {
                registered.push((fd, token, want_read, want_write));
                Ok(())
            }
        }
    }

    fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        want_read: bool,
        want_write: bool,
    ) -> std::io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => Self::epoll_ctl(
                epfd.as_raw_fd(),
                epoll_sys::EPOLL_CTL_MOD,
                fd,
                Self::mask(want_read, want_write),
                token,
            ),
            Poller::Poll { registered } => {
                if let Some(entry) = registered.iter_mut().find(|(f, ..)| *f == fd) {
                    entry.2 = want_read;
                    entry.3 = want_write;
                }
                Ok(())
            }
        }
    }

    fn remove(&mut self, fd: RawFd) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, .. } => {
                let _ = Self::epoll_ctl(epfd.as_raw_fd(), epoll_sys::EPOLL_CTL_DEL, fd, 0, 0);
            }
            Poller::Poll { registered } => registered.retain(|(f, ..)| *f != fd),
        }
    }

    /// Blocks up to `timeout` for readiness and appends results to
    /// `out`.
    fn wait(&mut self, timeout: Duration, out: &mut Vec<Readiness>) {
        let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll { epfd, events } => {
                let n = unsafe {
                    epoll_sys::epoll_wait(
                        epfd.as_raw_fd(),
                        events.as_mut_ptr(),
                        events.len() as i32,
                        millis,
                    )
                };
                for ev in events.iter().take(n.max(0) as usize) {
                    let bits = { ev.events };
                    out.push(Readiness {
                        token: { ev.data },
                        readable: bits & epoll_sys::EPOLLIN != 0,
                        writable: bits & epoll_sys::EPOLLOUT != 0,
                        hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
                    });
                }
            }
            Poller::Poll { registered } => {
                let mut fds: Vec<poll_sys::PollFd> = registered
                    .iter()
                    .map(|&(fd, _, r, w)| poll_sys::PollFd {
                        fd,
                        events: if r { poll_sys::POLLIN } else { 0 }
                            | if w { poll_sys::POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe {
                    poll_sys::poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, millis)
                };
                if n <= 0 {
                    return;
                }
                for (pfd, &(_, token, ..)) in fds.iter().zip(registered.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    out.push(Readiness {
                        token,
                        readable: pfd.revents & poll_sys::POLLIN != 0,
                        writable: pfd.revents & poll_sys::POLLOUT != 0,
                        hangup: pfd.revents & (poll_sys::POLLERR | poll_sys::POLLHUP) != 0,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------- identity

/// A reactor connection: a slab slot plus a generation counter, so a
/// stale id held by a worker after the slot was reused addresses
/// nobody (the send is dropped) instead of a stranger's connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId {
    slot: u32,
    gen: u32,
}

impl core::fmt::Display for ConnId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "conn{}.{}", self.slot, self.gen)
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

// ----------------------------------------------------------- handles

enum Command {
    /// Queue one already-encoded frame on a connection.
    Send(ConnId, Vec<u8>),
    /// Tear a connection down.
    Close(ConnId),
    /// Wake the app ([`ReactorApp::on_nudge`]) and retry parked frames
    /// — e.g. a worker drained its queue and can take more.
    Nudge,
    /// Stop the loop.
    Shutdown,
}

struct HandleInner {
    queue: Mutex<Vec<Command>>,
    waker: UnixStream,
    max_frame: usize,
}

/// A cloneable handle into a running reactor: worker threads use it to
/// push outbound frames, close connections, and nudge the loop. All
/// operations are nonblocking (the command queue is unbounded, but
/// each connection's outbound bytes are bounded by the reactor).
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<HandleInner>,
}

impl ReactorHandle {
    fn push(&self, cmd: Command) {
        self.inner.queue.lock().push(cmd);
        // One byte is enough; a full pipe already implies a pending
        // wakeup, so WouldBlock is success.
        let _ = (&self.inner.waker).write(&[1]);
    }

    /// Encodes `msg` (seed JSON) and queues it on `conn`.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] / [`NetError::Malformed`] from
    /// encoding. Delivery itself is asynchronous: a dead `conn` drops
    /// the frame silently (exactly like a socket send racing a close).
    pub fn send(&self, conn: ConnId, msg: &NetMsg) -> Result<(), NetError> {
        self.send_fmt(conn, msg, WireFormat::Json)
    }

    /// [`ReactorHandle::send`], encoding in `format` — how a worker
    /// answers a client in the format it spoke (captured at handshake
    /// via [`ReactorCtx::peer_format`]). Encoding still happens on the
    /// worker thread, off the loop.
    ///
    /// # Errors
    ///
    /// As [`ReactorHandle::send`].
    pub fn send_fmt(&self, conn: ConnId, msg: &NetMsg, format: WireFormat) -> Result<(), NetError> {
        let frame = encode_frame_fmt(msg, self.inner.max_frame, format)?;
        self.push(Command::Send(conn, frame));
        Ok(())
    }

    /// Requests an asynchronous close of `conn`.
    pub fn close(&self, conn: ConnId) {
        self.push(Command::Close(conn));
    }

    /// Wakes the loop: parked inbound frames are retried and
    /// [`ReactorApp::on_nudge`] runs.
    pub fn nudge(&self) {
        self.push(Command::Nudge);
    }

    /// Asks the loop to stop. The owning [`Reactor`] joins it.
    pub fn shutdown(&self) {
        self.push(Command::Shutdown);
    }

    /// A [`FrameTx`] addressing `conn`, so worker code written against
    /// the transport traits can answer reactor clients unchanged.
    /// Sends seed JSON; format-mirroring apps use
    /// [`ReactorHandle::conn_tx_fmt`].
    pub fn conn_tx(&self, conn: ConnId) -> ReactorConnTx {
        self.conn_tx_fmt(conn, WireFormat::Json)
    }

    /// [`ReactorHandle::conn_tx`] pinned to `format` — the client's
    /// format as observed at handshake.
    pub fn conn_tx_fmt(&self, conn: ConnId, format: WireFormat) -> ReactorConnTx {
        ReactorConnTx {
            handle: self.clone(),
            conn,
            format,
        }
    }
}

/// [`FrameTx`] over a reactor connection (see
/// [`ReactorHandle::conn_tx`]).
pub struct ReactorConnTx {
    handle: ReactorHandle,
    conn: ConnId,
    format: WireFormat,
}

impl FrameTx for ReactorConnTx {
    fn send(&mut self, msg: &NetMsg) -> Result<(), NetError> {
        self.handle.send_fmt(self.conn, msg, self.format)
    }

    fn close(&mut self) {
        self.handle.close(self.conn);
    }
}

// ------------------------------------------------------------- stats

#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    live: AtomicUsize,
    peak: AtomicUsize,
}

/// A point-in-time view of the loop's connection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections accepted since start.
    pub accepted: u64,
    /// Currently-open connections.
    pub live: usize,
    /// High-water mark of concurrently-open connections.
    pub peak: usize,
}

// --------------------------------------------------------------- app

/// The application driven by a reactor loop.
///
/// All methods run **on the loop thread**; they must not block. Heavy
/// work belongs on worker threads fed through bounded queues, with
/// results pushed back via a [`ReactorHandle`].
pub trait ReactorApp: Send + 'static {
    /// One decoded inbound frame. Return `None` when consumed; return
    /// the frame back (`Some`) when downstream is full — the reactor
    /// parks it, suspends reading that connection, and retries on
    /// every tick and nudge.
    fn on_frame(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId, msg: NetMsg) -> Option<NetMsg>;

    /// `conn` is gone (peer close, error, timeout, or an app-requested
    /// close). The id is already invalid for sending.
    fn on_closed(&mut self, ctx: &mut ReactorCtx<'_>, conn: ConnId);

    /// Periodic tick (the reactor's coarse clock).
    fn on_tick(&mut self, _ctx: &mut ReactorCtx<'_>) {}

    /// A worker nudged the loop (after parked-frame retries).
    fn on_nudge(&mut self, _ctx: &mut ReactorCtx<'_>) {}
}

// -------------------------------------------------------------- loop

struct Conn {
    gen: u32,
    stream: TcpStream,
    decoder: FrameDecoder,
    outbound: OutboundQueue,
    /// A frame the app could not take yet; read interest stays off
    /// while it is here.
    parked: Option<NetMsg>,
    want_write: bool,
    read_suspended: bool,
    close_after_flush: bool,
    handshaken: bool,
    /// Accept time. The handshake deadline runs against this, not
    /// `last_activity` — a pre-`Hello` peer trickling one byte per
    /// tick must not be able to hold a slot forever.
    established: Instant,
    last_activity: Instant,
}

struct LoopCore {
    poller: Poller,
    listener: TcpListener,
    waker_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<u32>,
    /// Slots freed this iteration; reusable only from the next one, so
    /// a stale readiness event in the current batch can never land on
    /// a fresh connection.
    freed_this_iter: Vec<u32>,
    next_gen: u32,
    dead: VecDeque<ConnId>,
    stats: Arc<StatsInner>,
    opts: ReactorOptions,
    running: bool,
}

/// Tuning for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorOptions {
    /// Frame cap per connection (both directions).
    pub max_frame: usize,
    /// Outbound byte bound per connection; overflowing it disconnects
    /// the slow consumer.
    pub outbound_cap: usize,
    /// Connection cap; excess accepts are closed immediately.
    pub max_conns: usize,
    /// A connection must handshake (the app calls
    /// [`ReactorCtx::set_handshaken`]) within this window or is closed.
    pub handshake_timeout: Duration,
    /// Reap handshaken connections with no traffic for this long.
    /// `None` lets identified peers idle indefinitely (the
    /// thread-per-connection behavior).
    pub idle_timeout: Option<Duration>,
    /// Tick period: the granularity of timeouts and parked-frame
    /// retries.
    pub tick: Duration,
}

impl Default for ReactorOptions {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
            outbound_cap: 64 * 1024 * 1024,
            max_conns: 16 * 1024,
            handshake_timeout: Duration::from_secs(30),
            idle_timeout: None,
            tick: Duration::from_millis(25),
        }
    }
}

/// What the loop exposes to app callbacks. All operations are
/// immediate (no cross-thread queue): sends go straight into the
/// connection's outbound queue with an opportunistic flush.
pub struct ReactorCtx<'a> {
    core: &'a mut LoopCore,
}

impl ReactorCtx<'_> {
    /// Queues `msg` on `conn` and flushes opportunistically.
    ///
    /// # Errors
    ///
    /// Encoding failures, and [`NetError::Backpressure`] when the
    /// connection's outbound bound is hit — in which case the slow
    /// consumer is already being disconnected and the caller should
    /// forget it.
    pub fn send(&mut self, conn: ConnId, msg: &NetMsg) -> Result<(), NetError> {
        // Mirror the format of the peer's most recent frame, so each
        // connection on a mixed-format daemon is answered in kind.
        let format = self.peer_format(conn);
        let frame = encode_frame_fmt(msg, self.core.opts.max_frame, format)?;
        self.core.send_bytes(conn, frame)
    }

    /// The wire format of the last frame decoded on `conn` (seed JSON
    /// until a frame has arrived, or for a dead conn). Apps capture
    /// this at handshake to address later worker-thread replies with
    /// [`ReactorHandle::send_fmt`] / [`ReactorHandle::conn_tx_fmt`].
    pub fn peer_format(&mut self, conn: ConnId) -> WireFormat {
        self.core
            .conn_mut(conn)
            .map(|c| c.decoder.last_format())
            .unwrap_or_default()
    }

    /// Closes `conn` once its queued outbound frames have flushed —
    /// the Reject path: the verdict is delivered, then the line drops.
    pub fn close_after_flush(&mut self, conn: ConnId) {
        self.core.close_after_flush(conn);
    }

    /// Closes `conn` now; queued outbound frames are dropped.
    pub fn close(&mut self, conn: ConnId) {
        if self.core.conn_mut(conn).is_some() {
            self.core.dead.push_back(conn);
        }
    }

    /// Marks `conn` as identified: the handshake deadline is lifted
    /// and the idle policy takes over.
    pub fn set_handshaken(&mut self, conn: ConnId) {
        if let Some(c) = self.core.conn_mut(conn) {
            c.handshaken = true;
            c.last_activity = Instant::now();
        }
    }
}

impl LoopCore {
    fn conn_mut(&mut self, id: ConnId) -> Option<&mut Conn> {
        match self.conns.get_mut(id.slot as usize) {
            Some(Some(c)) if c.gen == id.gen => Some(c),
            _ => None,
        }
    }

    fn conn_id(&self, slot: u32) -> Option<ConnId> {
        self.conns
            .get(slot as usize)
            .and_then(|s| s.as_ref())
            .map(|c| ConnId { slot, gen: c.gen })
    }

    fn set_interest(&mut self, slot: u32) {
        let Some(Some(c)) = self.conns.get(slot as usize) else {
            return;
        };
        let fd = c.stream.as_raw_fd();
        let gen = c.gen;
        let want_read = !c.read_suspended && c.parked.is_none();
        let want_write = c.want_write;
        if self
            .poller
            .modify(fd, TOKEN_CONN_BASE + slot as u64, want_read, want_write)
            .is_err()
        {
            // A connection the kernel will no longer watch can never
            // make progress again — retire it instead of stranding it
            // in the slab.
            self.dead.push_back(ConnId { slot, gen });
        }
    }

    fn send_bytes(&mut self, id: ConnId, frame: Vec<u8>) -> Result<(), NetError> {
        let pushed = match self.conn_mut(id) {
            // Racing a close: like a send on a just-closed socket.
            None => return Ok(()),
            Some(c) => c.outbound.push(frame),
        };
        if let Err(e) = pushed {
            // Slow-consumer policy: the queue bound is the line.
            self.dead.push_back(id);
            return Err(e);
        }
        self.flush_conn(id.slot);
        Ok(())
    }

    fn close_after_flush(&mut self, id: ConnId) {
        let empty = match self.conn_mut(id) {
            None => return,
            Some(c) => {
                if !c.outbound.is_empty() {
                    c.close_after_flush = true;
                    // Stop reading a peer we are about to drop.
                    c.read_suspended = true;
                }
                c.outbound.is_empty()
            }
        };
        if empty {
            self.dead.push_back(id);
        } else {
            self.set_interest(id.slot);
        }
    }

    /// Pushes queued bytes; updates write interest; schedules the close
    /// when a flush completes a `close_after_flush`.
    fn flush_conn(&mut self, slot: u32) {
        enum After {
            Nothing,
            Reinterest,
            Close(ConnId),
        }
        let after = match self.conns.get_mut(slot as usize) {
            Some(Some(c)) => {
                let gen = c.gen;
                match c.outbound.write_to(&mut c.stream) {
                    Ok(WriteProgress::Drained) => {
                        if c.close_after_flush {
                            After::Close(ConnId { slot, gen })
                        } else if c.want_write {
                            c.want_write = false;
                            After::Reinterest
                        } else {
                            After::Nothing
                        }
                    }
                    Ok(WriteProgress::Blocked) => {
                        if !c.want_write {
                            c.want_write = true;
                            After::Reinterest
                        } else {
                            After::Nothing
                        }
                    }
                    Err(_) => After::Close(ConnId { slot, gen }),
                }
            }
            _ => return,
        };
        match after {
            After::Nothing => {}
            After::Reinterest => self.set_interest(slot),
            After::Close(id) => self.dead.push_back(id),
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let live = self.stats.live.load(Ordering::Relaxed);
                    if live >= self.opts.max_conns {
                        // At capacity: drop immediately. (A reject
                        // frame could block; the cap is a safety rail,
                        // not a protocol state.)
                        continue;
                    }
                    let gen = self.next_gen;
                    self.next_gen = self.next_gen.wrapping_add(1);
                    let conn = Conn {
                        gen,
                        stream,
                        decoder: FrameDecoder::new(self.opts.max_frame),
                        outbound: OutboundQueue::new(self.opts.outbound_cap),
                        parked: None,
                        want_write: false,
                        read_suspended: false,
                        close_after_flush: false,
                        handshaken: false,
                        established: Instant::now(),
                        last_activity: Instant::now(),
                    };
                    let slot = match self.free_slots.pop() {
                        Some(s) => {
                            self.conns[s as usize] = Some(conn);
                            s
                        }
                        None => {
                            self.conns.push(Some(conn));
                            (self.conns.len() - 1) as u32
                        }
                    };
                    let fd = self.conns[slot as usize]
                        .as_ref()
                        .expect("just inserted")
                        .stream
                        .as_raw_fd();
                    if self
                        .poller
                        .add(fd, TOKEN_CONN_BASE + slot as u64, true, false)
                        .is_err()
                    {
                        // EMFILE/ENOSPC under load: a slot the kernel
                        // never watches would sit occupied forever.
                        // Close and free it now.
                        let c = self.conns[slot as usize].take().expect("just inserted");
                        let _ = c.stream.shutdown(std::net::Shutdown::Both);
                        self.freed_this_iter.push(slot);
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let live = self.stats.live.fetch_add(1, Ordering::Relaxed) + 1;
                    self.stats.peak.fetch_max(live, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Tears one connection down; returns its id if it was live (the
    /// caller then runs [`ReactorApp::on_closed`]).
    fn teardown(&mut self, id: ConnId) -> bool {
        let slot = id.slot as usize;
        let matches = matches!(self.conns.get(slot), Some(Some(c)) if c.gen == id.gen);
        if !matches {
            return false;
        }
        let c = self.conns[slot].take().expect("checked above");
        self.poller.remove(c.stream.as_raw_fd());
        let _ = c.stream.shutdown(std::net::Shutdown::Both);
        drop(c);
        self.freed_this_iter.push(id.slot);
        self.stats.live.fetch_sub(1, Ordering::Relaxed);
        true
    }
}

/// Delivers buffered frames (parked first) to the app until the
/// decoder runs dry or the app parks one.
fn deliver_frames<A: ReactorApp>(core: &mut LoopCore, app: &mut A, slot: u32) {
    // The message variant dwarfs the others, but this enum never
    // outlives one loop iteration — boxing it would put an allocation
    // on the per-frame hot path.
    #[allow(clippy::large_enum_variant)]
    enum Next {
        Gone,
        Dry { resume: bool },
        Poisoned(ConnId),
        Msg(ConnId, NetMsg),
    }
    loop {
        let next = match core.conn_id(slot) {
            None => Next::Gone,
            Some(id) => match core.conn_mut(id) {
                None => Next::Gone,
                Some(c) => match c.parked.take() {
                    Some(m) => Next::Msg(id, m),
                    None => match c.decoder.next_msg::<NetMsg>() {
                        Ok(Some(m)) => Next::Msg(id, m),
                        Ok(None) => {
                            let resume = c.read_suspended && !c.close_after_flush;
                            if resume {
                                c.read_suspended = false;
                            }
                            Next::Dry { resume }
                        }
                        // Oversized or garbage frame: the stream is
                        // poisoned; drop the peer.
                        Err(_) => Next::Poisoned(id),
                    },
                },
            },
        };
        match next {
            Next::Gone => return,
            Next::Dry { resume } => {
                if resume {
                    core.set_interest(slot);
                }
                return;
            }
            Next::Poisoned(id) => {
                core.dead.push_back(id);
                return;
            }
            Next::Msg(id, msg) => {
                let mut ctx = ReactorCtx { core };
                if let Some(parked) = app.on_frame(&mut ctx, id, msg) {
                    if let Some(c) = core.conn_mut(id) {
                        c.parked = Some(parked);
                        c.read_suspended = true;
                    }
                    core.set_interest(slot);
                    return;
                }
            }
        }
    }
}

fn read_ready<A: ReactorApp>(core: &mut LoopCore, app: &mut A, slot: u32) {
    let Some(id) = core.conn_id(slot) else { return };
    let mut buf = [0u8; 16 * 1024];
    loop {
        enum Got {
            Bytes,
            Stop,
            Dead,
            Retry,
        }
        let got = match core.conn_mut(id) {
            None => return,
            Some(c) => {
                if c.read_suspended || c.parked.is_some() {
                    Got::Stop
                } else {
                    match c.stream.read(&mut buf) {
                        Ok(0) => Got::Dead,
                        Ok(n) => {
                            c.last_activity = Instant::now();
                            if c.decoder.extend(&buf[..n]).is_err() {
                                Got::Dead
                            } else {
                                Got::Bytes
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => Got::Stop,
                        Err(e) if e.kind() == ErrorKind::Interrupted => Got::Retry,
                        Err(_) => Got::Dead,
                    }
                }
            }
        };
        match got {
            Got::Bytes => deliver_frames(core, app, slot),
            Got::Retry => {}
            Got::Stop => break,
            Got::Dead => {
                core.dead.push_back(id);
                break;
            }
        }
    }
    // EOF/error still delivers frames already buffered.
    deliver_frames(core, app, slot);
}

fn drain_dead<A: ReactorApp>(core: &mut LoopCore, app: &mut A) {
    while let Some(id) = core.dead.pop_front() {
        if core.teardown(id) {
            let mut ctx = ReactorCtx { core };
            app.on_closed(&mut ctx, id);
        }
    }
}

fn retry_parked<A: ReactorApp>(core: &mut LoopCore, app: &mut A) {
    let slots: Vec<u32> = (0..core.conns.len() as u32)
        .filter(|&s| {
            core.conns[s as usize]
                .as_ref()
                .is_some_and(|c| c.parked.is_some())
        })
        .collect();
    for slot in slots {
        deliver_frames(core, app, slot);
        drain_dead(core, app);
    }
}

fn process_commands<A: ReactorApp>(core: &mut LoopCore, app: &mut A, queue: &Mutex<Vec<Command>>) {
    let commands = std::mem::take(&mut *queue.lock());
    let mut nudged = false;
    for cmd in commands {
        match cmd {
            Command::Send(id, frame) => {
                // Backpressure/encode errors already scheduled the
                // close; the worker finds out via on_closed.
                let _ = core.send_bytes(id, frame);
            }
            Command::Close(id) => {
                if core.conn_mut(id).is_some() {
                    core.dead.push_back(id);
                }
            }
            Command::Nudge => nudged = true,
            Command::Shutdown => core.running = false,
        }
        drain_dead(core, app);
    }
    if nudged {
        retry_parked(core, app);
        let mut ctx = ReactorCtx { core };
        app.on_nudge(&mut ctx);
        drain_dead(core, app);
    }
}

fn run_loop<A: ReactorApp>(mut core: LoopCore, mut app: A, queue: Arc<HandleInner>) {
    let mut events: Vec<Readiness> = Vec::with_capacity(1024);
    let mut last_tick = Instant::now();
    while core.running {
        events.clear();
        core.poller.wait(core.opts.tick, &mut events);
        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => core.accept_ready(),
                TOKEN_WAKER => core.drain_waker(),
                token => {
                    let slot = (token - TOKEN_CONN_BASE) as u32;
                    if ev.writable {
                        core.flush_conn(slot);
                    }
                    if ev.readable {
                        read_ready(&mut core, &mut app, slot);
                    } else if ev.hangup {
                        // A pure hangup with nothing readable: the
                        // peer is gone.
                        if let Some(id) = core.conn_id(slot) {
                            core.dead.push_back(id);
                        }
                    }
                }
            }
            drain_dead(&mut core, &mut app);
        }
        process_commands(&mut core, &mut app, &queue.queue);

        if last_tick.elapsed() >= core.opts.tick {
            last_tick = Instant::now();
            retry_parked(&mut core, &mut app);
            // Timeouts: coarse, scanned per tick.
            let now = Instant::now();
            for slot in 0..core.conns.len() as u32 {
                let Some(Some(c)) = core.conns.get(slot as usize) else {
                    continue;
                };
                let gen = c.gen;
                let expired = if !c.handshaken {
                    now.duration_since(c.established) > core.opts.handshake_timeout
                } else if let Some(idle) = core.opts.idle_timeout {
                    now.duration_since(c.last_activity) > idle
                } else {
                    false
                };
                if expired {
                    core.dead.push_back(ConnId { slot, gen });
                }
            }
            drain_dead(&mut core, &mut app);
            let mut ctx = ReactorCtx { core: &mut core };
            app.on_tick(&mut ctx);
            drain_dead(&mut core, &mut app);
        }

        let freed = std::mem::take(&mut core.freed_this_iter);
        core.free_slots.extend(freed);
    }
    // Shutdown: close everything still live.
    for slot in 0..core.conns.len() {
        if let Some(c) = core.conns[slot].take() {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

// ------------------------------------------------------------ daemon

/// A running reactor: the loop thread plus its handle. Dropping (or
/// [`shutdown`](Self::shutdown)) stops the loop and joins it.
pub struct Reactor {
    addr: SocketAddr,
    handle: ReactorHandle,
    join: Option<JoinHandle<()>>,
    stats: Arc<StatsInner>,
    backend: &'static str,
}

impl Reactor {
    /// Starts the loop over a bound listener. `make_app` builds the
    /// application with the reactor's handle in hand (so the app can
    /// seed its worker threads with it before the first event fires).
    ///
    /// # Errors
    ///
    /// Listener/poller/self-pipe setup failures.
    pub fn start<A: ReactorApp>(
        listener: TcpListener,
        options: ReactorOptions,
        make_app: impl FnOnce(&ReactorHandle) -> A,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;

        let mut poller = Poller::new()?;
        let backend = poller.backend();
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.add(waker_rx.as_raw_fd(), TOKEN_WAKER, true, false)?;

        let inner = Arc::new(HandleInner {
            queue: Mutex::new(Vec::new()),
            waker: waker_tx,
            max_frame: options.max_frame,
        });
        let handle = ReactorHandle {
            inner: Arc::clone(&inner),
        };
        let app = make_app(&handle);
        let stats = Arc::new(StatsInner::default());
        let core = LoopCore {
            poller,
            listener,
            waker_rx,
            conns: Vec::new(),
            free_slots: Vec::new(),
            freed_this_iter: Vec::new(),
            next_gen: 0,
            dead: VecDeque::new(),
            stats: Arc::clone(&stats),
            opts: options,
            running: true,
        };
        let join = std::thread::Builder::new()
            .name("cryptonn-reactor".into())
            .spawn(move || run_loop(core, app, inner))?;
        Ok(Self {
            addr,
            handle,
            join: Some(join),
            stats,
            backend,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for worker threads.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Connection counters.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            live: self.stats.live.load(Ordering::Relaxed),
            peak: self.stats.peak.load(Ordering::Relaxed),
        }
    }

    /// Which readiness backend the loop runs on (`"epoll"` or
    /// `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Stops the loop and joins it. The app (and whatever worker
    /// plumbing it owns) is dropped on the loop thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop();
        }
    }
}
