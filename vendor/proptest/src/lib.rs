//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and
//! [`any`] strategies, [`collection::vec`], [`array::uniform4`],
//! `prop_oneof!`, and the `proptest! { ... }` test macro with
//! `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: cases are drawn from a deterministic per-test RNG (seeded from
//! the test name), and failing cases are **not shrunk** — the failure
//! message reports the case index instead so the run can be replayed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng, StandardUniform};

/// The RNG driving every strategy.
pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier crypto
        // properties fast in CI while still exploring the space.
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (used by `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: StandardUniform> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full range of `T` (integers, bool, unit floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A size specification: an exact length or a range of lengths.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s of values from `element` with lengths from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_n {
        ($($name:ident => $n:literal),*) => {$(
            /// The strategy type produced by the matching `uniformN`.
            pub struct $name<S>(S);

            impl<S: Strategy> Strategy for $name<S> {
                type Value = [S::Value; $n];

                fn sample(&self, rng: &mut TestRng) -> [S::Value; $n] {
                    core::array::from_fn(|_| self.0.sample(rng))
                }
            }
        )*};
    }

    uniform_n!(Uniform2 => 2, Uniform4 => 4, Uniform8 => 8);

    /// Generates `[T; 2]` arrays from one element strategy.
    pub fn uniform2<S: Strategy>(s: S) -> Uniform2<S> {
        Uniform2(s)
    }

    /// Generates `[T; 4]` arrays from one element strategy.
    pub fn uniform4<S: Strategy>(s: S) -> Uniform4<S> {
        Uniform4(s)
    }

    /// Generates `[T; 8]` arrays from one element strategy.
    pub fn uniform8<S: Strategy>(s: S) -> Uniform8<S> {
        Uniform8(s)
    }
}

/// A strategy choosing uniformly among boxed alternatives; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    /// The alternatives (public for the macro; treat as internal).
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Derives the deterministic RNG for one property (seeded by hashing the
/// fully-qualified test name, overridable via `PROPTEST_SEED`).
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0),
        Err(_) => 0,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// case instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::core::stringify!($cond),
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __l,
                __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::std::format!($($fmt)*),
                __l,
                __r,
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                __l,
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: ::std::vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` body is
/// run for the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_rng(::core::concat!(
                    ::core::module_path!(), "::", ::core::stringify!($name)
                ));
                $(let $arg = $crate::Strategy::boxed($strategy);)*
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut __rng);)*
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__msg) = __result {
                        ::core::panic!(
                            "property `{}` failed at case {}/{}:\n{}",
                            ::core::stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg,
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_range() {
        let mut rng = super::test_rng("strategies_sample_in_range");
        for _ in 0..200 {
            let v = (3i64..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let v = (0.0f64..1.0).sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
            let arr = super::array::uniform4(any::<u64>()).sample(&mut rng);
            assert_eq!(arr.len(), 4);
            let v = super::collection::vec(0u64..5, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let one = prop_oneof![1i64..=3, 10i64..=12].sample(&mut rng);
            assert!((1..=3).contains(&one) || (10..=12).contains(&one));
            assert_eq!(Just(7u8).sample(&mut rng), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }

        #[test]
        fn mapped_strategy(v in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20, "v = {}", v);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing_property` failed")]
    fn failures_report_case() {
        proptest! {
            @cfg (ProptestConfig::with_cases(5))
            fn failing_property(a in 0u64..10) {
                prop_assert!(a > 100);
            }
        }
        failing_property();
    }
}
