//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches were written against
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], the `criterion_group!`/`criterion_main!` macros and
//! [`black_box`]) over a simple wall-clock harness: each benchmark warms
//! up, then runs `sample_size` samples and prints min/mean per-iteration
//! times. There is no statistical analysis, HTML report, or baseline
//! comparison — results are a single-line series suitable for eyeballing
//! and for the perf-trajectory log.
//!
//! `CRYPTONN_BENCH_FAST=1` caps measurement at one sample per benchmark
//! so CI can smoke-test the bench targets quickly.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
            default_warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring criterion's
    /// builder so `criterion_group!`-generated code can call it.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let label = id.render();
        let (sample_size, measurement_time, warm_up_time) = (
            self.default_sample_size,
            self.default_measurement_time,
            self.default_warm_up_time,
        );
        run_benchmark(&label, sample_size, measurement_time, warm_up_time, &mut f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: s,
            parameter: None,
        }
    }
}

/// Throughput annotations (accepted and ignored by this harness).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    mode: BencherMode,
}

enum BencherMode {
    /// Calibration pass: determine iterations per sample.
    Calibrate {
        target: Duration,
        measured: Option<(u64, Duration)>,
    },
    /// Measurement pass: record `samples`.
    Measure { sample_count: usize },
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            BencherMode::Calibrate { target, measured } => {
                // Double the iteration count until the batch takes at
                // least ~1% of the warm-up target, then scale.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= *target / 20 || iters >= 1 << 20 {
                        *measured = Some((iters, elapsed));
                        break;
                    }
                    iters *= 2;
                }
            }
            BencherMode::Measure { sample_count } => {
                for _ in 0..*sample_count {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("CRYPTONN_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    // Calibration/warm-up pass.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        mode: BencherMode::Calibrate {
            target: warm_up_time,
            measured: None,
        },
    };
    f(&mut bencher);
    let (cal_iters, cal_elapsed) = match bencher.mode {
        BencherMode::Calibrate { measured, .. } => measured.unwrap_or((1, Duration::ZERO)),
        BencherMode::Measure { .. } => unreachable!(),
    };
    let per_iter = if cal_iters > 0 && !cal_elapsed.is_zero() {
        cal_elapsed / cal_iters as u32
    } else {
        Duration::from_nanos(1)
    };

    let sample_count = if fast_mode() { 1 } else { sample_size.max(1) };
    // Aim each sample at measurement_time / sample_count.
    let sample_budget = measurement_time / sample_count as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1
    } else {
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample,
        mode: BencherMode::Measure { sample_count },
    };
    f(&mut bencher);

    let iters = bencher.iters_per_sample;
    let per_iter_times: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    if per_iter_times.is_empty() {
        println!("{label:<60} (no samples — closure never called iter)");
        return;
    }
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    let min = per_iter_times.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<60} time: [min {} mean {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(mean),
        per_iter_times.len(),
        iters,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("CRYPTONN_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("test_group");
            g.sample_size(2);
            g.measurement_time(Duration::from_millis(10));
            g.warm_up_time(Duration::from_millis(1));
            g.bench_function("counting", |b| b.iter(|| count += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(5).render(), "5");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
