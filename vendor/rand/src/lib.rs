//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small subset of the `rand` 0.9-style API it
//! actually uses: [`RngCore`] / [`Rng`] / [`RngExt`] traits,
//! [`SeedableRng`], the deterministic [`rngs::StdRng`] (xoshiro256**),
//! an entropy-seeded [`rng()`] constructor, uniform range sampling, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is *not* cryptographically secure; it exists so the
//! reproduction's tests, benches and examples are deterministic and
//! self-contained. Production deployments should swap in a CSPRNG by
//! replacing this vendored crate with the real `rand`/`rand_chacha`.

/// Low-level source of randomness: everything is derived from
/// [`next_u64`](RngCore::next_u64).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`] so generic bounds read like the real crate.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Extension methods for sampling typed values, mirroring the
/// `random`/`random_range` family.
pub trait RngExt: RngCore {
    /// Samples a value of a type with a standard uniform distribution
    /// (integers over their full range, `f64`/`f32` in `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b`, `a..=b`, or `a..`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be sampled from their standard uniform distribution.
pub trait StandardUniform: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as $wide;
                let v = <$wide as StandardUniform>::sample_standard(rng) % span;
                self.start.wrapping_add(v as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return <$wide as StandardUniform>::sample_standard(rng) as $t;
                }
                let v = <$wide as StandardUniform>::sample_standard(rng) % span;
                start.wrapping_add(v as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeFrom<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_single(rng)
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64, u128 => u128,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64, i128 => u128
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The full-width seed type (32 bytes for [`rngs::StdRng`],
    /// matching real rand's shape).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from another generator, transferring a
    /// full-width seed (not just 64 bits).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }

    /// Builds a generator seeded from ambient entropy.
    fn from_os_rng() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64. Deterministic, `Clone`, and fast — but **not** a
    /// CSPRNG (see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (limb, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *limb = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro forbids the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for limb in &mut s {
                *limb = Self::splitmix64(&mut state);
            }
            // SplitMix64 cannot produce the all-zero state from any
            // seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Returns an entropy-seeded generator, mirroring `rand::rng()`.
///
/// Entropy comes from the OS-seeded `RandomState` hasher plus a
/// process-wide counter, so repeated calls yield independent streams.
pub fn rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(entropy_seed())
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    // RandomState is seeded from OS entropy once per process.
    let mut hasher = std::hash::RandomState::new().build_hasher();
    hasher.write_u64(count);
    if let Ok(elapsed) = std::time::UNIX_EPOCH.elapsed() {
        hasher.write_u128(elapsed.as_nanos());
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn from_seed_uses_full_width() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        // Differ only in the last byte: a 64-bit-truncating seed would
        // collapse these to the same stream.
        a[31] = 1;
        b[31] = 2;
        // xoshiro's first output reflects only s[1], so compare a short
        // stream rather than a single draw.
        let (mut ra, mut rb) = (StdRng::from_seed(a), StdRng::from_seed(b));
        let stream = |r: &mut StdRng| [r.next_u64(), r.next_u64(), r.next_u64()];
        assert_ne!(stream(&mut ra), stream(&mut rb));
        // Same seed, same stream.
        let (mut r1, mut r2) = (StdRng::from_seed(a), StdRng::from_seed(a));
        assert_eq!(r1.next_u64(), r2.next_u64());
        // All-zero seed is patched, not a stuck generator.
        let mut rz = StdRng::from_seed([0u8; 32]);
        assert_ne!(rz.next_u64(), rz.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = rng.random_range(3usize..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.random_range(0u64..=u64::MAX);
        let _: u128 = rng.random_range(0u128..=u128::MAX);
    }

    #[test]
    fn unit_float_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "49! permutations; identity is astronomically unlikely"
        );
    }

    #[test]
    fn entropy_rngs_differ() {
        let mut a = super::rng();
        let mut b = super::rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
