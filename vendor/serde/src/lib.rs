//! Offline stand-in for `serde`.
//!
//! The build environment has no crates registry, so the workspace
//! vendors a small serialization framework exposing the `serde` trait
//! names the code was written against ([`Serialize`], [`Deserialize`],
//! [`Serializer`], [`Deserializer`], `de::Error::custom`) plus the
//! `#[derive(Serialize, Deserialize)]` macros.
//!
//! Unlike real serde's visitor architecture, everything routes through
//! one self-describing [`Value`] tree (the JSON data model). That is
//! sufficient for the formats this workspace uses (`serde_json`) while
//! keeping the vendored code small and auditable.

pub use serde_derive::{Deserialize, Serialize};

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The self-describing data model every serializer/deserializer in this
/// vendored framework speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative numbers).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An opaque byte string. JSON has no native byte type, so the
    /// text format renders this as the minimal lowercase hex of the
    /// bytes read little-endian (exactly what the bigint types used to
    /// emit as strings), while binary formats carry the raw bytes —
    /// the vendored stand-in for real serde's `is_human_readable()`
    /// seam.
    Bytes(Vec<u8>),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (fields preserve declaration
    /// order; JSON objects preserve document order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

pub mod ser {
    //! Serialization half of the framework.

    use super::Value;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A sink for one [`Value`] tree.
    pub trait Serializer: Sized {
        /// The successful result type.
        type Ok;
        /// The error type.
        type Error: Error;

        /// Consumes a fully-built value tree.
        fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string.
        fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(s.to_owned()))
        }

        /// Serializes an opaque byte string (see [`Value::Bytes`] for
        /// how formats render it).
        fn serialize_bytes(self, b: &[u8]) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bytes(b.to_vec()))
        }

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }

        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::U64(v))
        }

        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::I64(v))
        }

        /// Serializes a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }

        /// Serializes a unit value as null.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
    }

    /// The error of [`ValueSerializer`]; never actually constructed.
    #[derive(Debug)]
    pub struct Infallible(String);

    impl std::fmt::Display for Infallible {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl Error for Infallible {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Infallible(msg.to_string())
        }
    }

    /// A serializer that just hands back the built [`Value`].
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Infallible;

        fn serialize_value(self, v: Value) -> Result<Value, Infallible> {
            Ok(v)
        }
    }

    /// Serializes any [`Serialize`](super::Serialize) into the value model.
    pub fn to_value<T: super::Serialize + ?Sized>(v: &T) -> Value {
        v.serialize(ValueSerializer)
            .expect("ValueSerializer is infallible")
    }
}

pub mod de {
    //! Deserialization half of the framework.

    use super::Value;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A source of one [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// The error type.
        type Error: Error;

        /// Produces the full value tree.
        fn deserialize_value(self) -> Result<Value, Self::Error>;
    }

    /// A plain string error for value-model conversions.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ValueError(pub String);

    impl std::fmt::Display for ValueError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ValueError {}

    impl Error for ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    /// A deserializer reading from an owned [`Value`].
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = ValueError;

        fn deserialize_value(self) -> Result<Value, ValueError> {
            Ok(self.0)
        }
    }

    /// Shorthand for types deserializable from any lifetime (all types
    /// in this value-model framework are).
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}

    /// Converts a value-model node into a typed value.
    pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, ValueError> {
        T::deserialize(ValueDeserializer(v))
    }

    /// Pulls field `name` out of map entries and deserializes it — the
    /// workhorse of derived struct impls.
    pub fn field<T: DeserializeOwned>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<T, ValueError> {
        let v = entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| ValueError(format!("missing field `{name}`")))?;
        from_value(v).map_err(|e| ValueError(format!("field `{name}`: {e}")))
    }

    /// Like [`field`], but a missing entry yields `T::default()` — the
    /// backing of `#[serde(default)]`, which keeps recordings made
    /// before a wire type grew a field deserializable. A *present*
    /// entry must still parse; only absence falls back.
    pub fn field_or_default<T: DeserializeOwned + Default>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<T, ValueError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                from_value(v.clone()).map_err(|e| ValueError(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A type serializable into the value model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type deserializable from the value model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---- primitive impls -----------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|v| ser::to_value(v)).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), ser::to_value(v)))
                .collect(),
        ))
    }
}

impl<V: Serialize, H> Serialize for HashMap<String, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), ser::to_value(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        s.serialize_value(Value::Map(entries))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

fn type_error<E: de::Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw: u64 = match v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    other => return Err(type_error("unsigned integer", &other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let raw: i64 = match v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    other => return Err(type_error("integer", &other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            other => Err(type_error("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for Cow<'de, str> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        String::deserialize(d).map(Cow::Owned)
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => de::from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| de::from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(type_error("sequence", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(ser::to_value(&42u32), Value::U64(42));
        assert_eq!(ser::to_value(&-7i64), Value::I64(-7));
        assert_eq!(ser::to_value(&true), Value::Bool(true));
        assert_eq!(ser::to_value(&"hi".to_string()), Value::Str("hi".into()));
        let v: u32 = de::from_value(Value::U64(42)).unwrap();
        assert_eq!(v, 42);
        let s: String = de::from_value(Value::Str("x".into())).unwrap();
        assert_eq!(s, "x");
        let o: Option<u64> = de::from_value(Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u64, 2, 3];
        let val = ser::to_value(&v);
        assert_eq!(
            val,
            Value::Seq(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        let back: Vec<u64> = de::from_value(val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn range_errors() {
        let r: Result<u8, _> = de::from_value(Value::U64(300));
        assert!(r.is_err());
        let r: Result<u64, _> = de::from_value(Value::Str("nope".into()));
        assert!(r.is_err());
    }
}
