//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored value-model `serde` crate, without `syn`/`quote`
//! (no registry access). The parser covers exactly the shapes this
//! workspace derives on:
//!
//! - structs with named fields (optionally generic over type params),
//! - tuple structs (newtype-transparent for one field, sequences
//!   otherwise),
//! - enums with unit and one-field tuple variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Of the `#[serde(...)]` field attributes, exactly one is supported:
//! `#[serde(default)]` on a named struct field substitutes
//! `Default::default()` when the field is absent from the input map —
//! how the workspace keeps old recordings deserializable after a wire
//! type grows a field. Any other `#[serde(...)]` content is rejected at
//! derive time rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Input {
    name: String,
    /// Type parameters as `(ident, has_explicit_bounds)`.
    params: Vec<(String, String)>,
    data: Data,
}

enum Data {
    /// Named fields as `(ident, has_serde_default)`.
    Named(Vec<(String, bool)>),
    Tuple(usize),
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok(parsed) => {
            let code = match mode {
                Mode::Ser => gen_serialize(&parsed),
                Mode::De => gen_deserialize(&parsed),
            };
            code.parse().expect("derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing -------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let params = parse_generics(&tokens, &mut i)?;

    let data = if kind == "enum" {
        let group = expect_group(&tokens, &mut i, Delimiter::Brace)?;
        Data::Enum(parse_variants(group)?)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("unsupported struct body: {other:?}")),
        }
    };

    Ok(Input { name, params, data })
}

/// Skips attributes and visibility, reporting whether a
/// `#[serde(default)]` was among the skipped attributes. Any other
/// `#[serde(...)]` content is an error: an attribute this derive would
/// silently drop must not look like it took effect.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the attribute body is the next group.
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    default |= parse_serde_attr(g.stream())?;
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return Ok(default),
        }
    }
}

/// True if an attribute body (the tokens inside `#[...]`) is
/// `serde(default)`; an error for any other `serde(...)` shape; false
/// for non-serde attributes.
fn parse_serde_attr(stream: TokenStream) -> Result<bool, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false),
    }
    match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(id)] if id.to_string() == "default" => Ok(true),
                _ => Err(format!(
                    "unsupported #[serde(...)] attribute: only `default` is implemented, got `{g}`"
                )),
            }
        }
        other => Err(format!("malformed #[serde ...] attribute: {other:?}")),
    }
}

fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<(String, String)>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .ok_or_else(|| "unclosed generic parameter list".to_string())?
            .clone();
        *i += 1;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tok);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    current.push(tok);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                push_param(&mut params, &mut current)?;
            }
            _ => current.push(tok),
        }
    }
    push_param(&mut params, &mut current)?;
    Ok(params)
}

fn push_param(
    params: &mut Vec<(String, String)>,
    current: &mut Vec<TokenTree>,
) -> Result<(), String> {
    if current.is_empty() {
        return Ok(());
    }
    if matches!(&current[0], TokenTree::Punct(p) if p.as_char() == '\'') {
        return Err("lifetime parameters are not supported by the vendored derive".into());
    }
    let ident = match &current[0] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("unsupported generic parameter: {other}")),
    };
    let bounds = current
        .iter()
        .skip(2) // ident and `:`
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    current.clear();
    params.push((ident, bounds));
    Ok(())
}

fn expect_group(
    tokens: &[TokenTree],
    i: &mut usize,
    delim: Delimiter,
) -> Result<TokenStream, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            Ok(g.stream())
        }
        other => Err(format!("expected {delim:?} group, found {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other}")),
        };
        fields.push((name, default));
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // Skip the type: consume until a comma outside any `<...>` nesting.
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other}")),
        };
        i += 1;
        let mut payload = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    if count_tuple_fields(g.stream()) != 1 {
                        return Err(format!(
                            "variant `{name}`: only single-field tuple variants are supported"
                        ));
                    }
                    payload = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "variant `{name}`: struct variants are not supported"
                    ));
                }
                _ => {}
            }
        }
        variants.push((name, payload));
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(variants)
}

// ---- code generation -----------------------------------------------------

fn impl_header(input: &Input, mode: Mode) -> String {
    let bound = match mode {
        Mode::Ser => "::serde::Serialize",
        Mode::De => "::serde::de::DeserializeOwned",
    };
    let lifetime = match mode {
        Mode::Ser => String::new(),
        Mode::De => "'de, ".to_string(),
    };
    let trait_name = match mode {
        Mode::Ser => "::serde::Serialize".to_string(),
        Mode::De => "::serde::Deserialize<'de>".to_string(),
    };
    let (impl_params, ty_args) = if input.params.is_empty() {
        if mode == Mode::De {
            ("<'de>".to_string(), String::new())
        } else {
            (String::new(), String::new())
        }
    } else {
        let decls: Vec<String> = input
            .params
            .iter()
            .map(|(id, bounds)| {
                if bounds.is_empty() {
                    format!("{id}: {bound}")
                } else {
                    format!("{id}: {bounds} + {bound}")
                }
            })
            .collect();
        let args: Vec<String> = input.params.iter().map(|(id, _)| id.clone()).collect();
        (
            format!("<{}{}>", lifetime, decls.join(", ")),
            format!("<{}>", args.join(", ")),
        )
    };
    format!(
        "impl{impl_params} {trait_name} for {name}{ty_args}",
        name = input.name
    )
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header(input, Mode::Ser);
    let body = match &input.data {
        Data::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|(f, _)| {
                    format!("__m.push(({f:?}.to_string(), ::serde::ser::to_value(&self.{f})));\n")
                })
                .collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}\
                 __serializer.serialize_value(::serde::Value::Map(__m))"
            )
        }
        Data::Tuple(1) => "::serde::Serialize::serialize(&self.0, __serializer)".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::to_value(&self.{i})"))
                .collect();
            format!(
                "__serializer.serialize_value(::serde::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    let name = &input.name;
                    if *payload {
                        format!(
                            "{name}::{v}(__inner) => __serializer.serialize_value(\
                             ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
                             ::serde::ser::to_value(__inner))])),\n"
                        )
                    } else {
                        format!("{name}::{v} => __serializer.serialize_str({v:?}),\n")
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header(input, Mode::De);
    let name = &input.name;
    let custom = "<__D::Error as ::serde::de::Error>::custom";
    let body = match &input.data {
        Data::Named(fields) => {
            let reads: String = fields
                .iter()
                .map(|(f, default)| {
                    let getter = if *default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    format!("{f}: ::serde::de::{getter}(__m, {f:?}).map_err({custom})?,\n")
                })
                .collect();
            format!(
                "let __value = __deserializer.deserialize_value()?;\n\
                 let __m = __value.as_map().ok_or_else(|| {custom}(\
                 ::std::format!(\"expected map for struct {name}, got {{}}\", __value.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n{reads}}})"
            )
        }
        Data::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))"
        ),
        Data::Tuple(n) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| {
                    format!("::serde::de::from_value(__items[{i}].clone()).map_err({custom})?")
                })
                .collect();
            format!(
                "let __value = __deserializer.deserialize_value()?;\n\
                 let __items = __value.as_seq().ok_or_else(|| {custom}(\
                 \"expected sequence for tuple struct {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::core::result::Result::Err({custom}(::std::format!(\
                 \"expected {n} elements, got {{}}\", __items.len())));\n}}\n\
                 ::core::result::Result::Ok({name}({reads}))",
                reads = reads.join(", ")
            )
        }
        Data::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::de::from_value(__inner).map_err({custom})?)),\n"
                    )
                })
                .collect();
            format!(
                "match __deserializer.deserialize_value()? {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __other))),\n}},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.into_iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{payload_arms}\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __other))),\n}}\n}},\n\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"expected variant of {name}, got {{}}\", __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "{header} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}"
    )
}
