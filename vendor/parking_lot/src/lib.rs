//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: [`Mutex`] with
//! an infallible `lock()` (poisoning is swallowed, matching parking_lot
//! semantics of not poisoning at all) and [`RwLock`] with `read`/`write`.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
