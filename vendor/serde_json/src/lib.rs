//! Offline stand-in for `serde_json`: a JSON writer and recursive-descent
//! parser over the vendored `serde` value model. Supports exactly the
//! surface the workspace uses — [`to_string`]/[`to_vec`]/[`append_to_vec`]
//! and [`from_str`]/[`from_slice`].

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Errors from JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_value(&serde::ser::to_value(value), &mut out)?;
    // The writer only emits valid UTF-8 (ASCII syntax plus pass-through
    // of already-valid `&str` contents).
    Ok(String::from_utf8(out).expect("writer emits UTF-8"))
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// As [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    write_value(&serde::ser::to_value(value), &mut out)?;
    Ok(out)
}

/// Appends a value's compact JSON encoding to `out` — the
/// allocation-reuse entry point for callers assembling framed wire
/// payloads. On error, `out` may hold a partial encoding; the caller
/// owns truncating back to its checkpoint.
///
/// # Errors
///
/// As [`to_string`].
pub fn append_to_vec<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<(), Error> {
    write_value(&serde::ser::to_value(value), out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a type mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Deserializes a value from JSON bytes — no UTF-8 pre-pass: the
/// parser validates exactly the bytes that need it (string contents)
/// while scanning.
///
/// # Errors
///
/// As [`from_str`].
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = Parser { bytes, pos: 0 }.parse_document()?;
    serde::de::from_value(value).map_err(|e| Error(e.to_string()))
}

fn write_value(v: &Value, out: &mut Vec<u8>) -> Result<(), Error> {
    match v {
        Value::Null => out.extend_from_slice(b"null"),
        Value::Bool(b) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        Value::I64(n) => out.extend_from_slice(n.to_string().as_bytes()),
        Value::U64(n) => out.extend_from_slice(n.to_string().as_bytes()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot encode non-finite float".into()));
            }
            let s = f.to_string();
            out.extend_from_slice(s.as_bytes());
            // Keep floats round-tripping as floats.
            if !s.contains(['.', 'e', 'E']) {
                out.extend_from_slice(b".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Bytes(b) => write_bytes_hex(b, out),
        Value::Seq(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(item, out)?;
            }
            out.push(b']');
        }
        Value::Map(entries) => {
            out.push(b'{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_string(k, out);
                out.push(b':');
                write_value(item, out)?;
            }
            out.push(b'}');
        }
    }
    Ok(())
}

/// Renders a byte string as the quoted minimal lowercase hex of the
/// bytes read little-endian — byte-for-byte what the bigint types'
/// `to_hex()` emitted when they serialized as strings, so switching
/// them to [`Value::Bytes`] leaves every JSON document unchanged.
fn write_bytes_hex(bytes: &[u8], out: &mut Vec<u8>) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    out.push(b'"');
    match bytes.split_last() {
        None => out.push(b'0'),
        Some((&top, rest)) => {
            // Minimal form: no leading zero nibble on the most
            // significant byte.
            if top >= 0x10 {
                out.push(HEX[(top >> 4) as usize]);
            }
            out.push(HEX[(top & 0xf) as usize]);
            for &b in rest.iter().rev() {
                out.push(HEX[(b >> 4) as usize]);
                out.push(HEX[(b & 0xf) as usize]);
            }
        }
    }
    out.push(b'"');
}

fn write_string(s: &str, out: &mut Vec<u8>) {
    out.push(b'"');
    // Byte-wise is safe: every escape trigger is a single ASCII byte,
    // and multi-byte UTF-8 sequences (all bytes >= 0x80) pass through.
    for &b in s.as_bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x00..=0x1f => {
                out.extend_from_slice(format!("\\u{b:04x}").as_bytes());
            }
            _ => out.push(b),
        }
    }
    out.push(b'"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_map(),
            b'[' => self.parse_seq(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // workspace's ASCII-only payloads.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn string_escapes() {
        let s = "a \"quote\"\nand \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn unicode_passthrough() {
        let s = "héllo → wörld".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_structures() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
        assert_eq!(
            from_str::<Vec<Vec<u64>>>(" [ [ 1 , 2 ] , [ 3 ] ] ").unwrap(),
            v
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12abc").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("{}").is_err());
    }
}
