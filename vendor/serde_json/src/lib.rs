//! Offline stand-in for `serde_json`: a JSON writer and recursive-descent
//! parser over the vendored `serde` value model. Supports exactly the
//! surface the workspace uses — [`to_string`] and [`from_str`].

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Errors from JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::ser::to_value(value), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a type mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .parse_document()?;
    serde::de::from_value(value).map_err(|e| Error(e.to_string()))
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot encode non-finite float".into()));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep floats round-tripping as floats.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_map(),
            b'[' => self.parse_seq(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // workspace's ASCII-only payloads.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn string_escapes() {
        let s = "a \"quote\"\nand \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn unicode_passthrough() {
        let s = "héllo → wörld".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_structures() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
        assert_eq!(
            from_str::<Vec<Vec<u64>>>(" [ [ 1 , 2 ] , [ 3 ] ] ").unwrap(),
            v
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12abc").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("{}").is_err());
    }
}
