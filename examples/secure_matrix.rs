//! Secure matrix computation (Algorithm 1) walkthrough.
//!
//! Demonstrates every permitted function of the secure matrix scheme —
//! dot-product and all four element-wise operations — with serial vs
//! parallel decryption timings (the contrast behind Figs. 3–5).
//!
//! Run with: `cargo run --release -p cryptonn-suite --example secure_matrix`

use std::time::Instant;

use cryptonn_fe::{BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_matrix::Matrix;
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, secure_dot, secure_elementwise, EncryptedMatrix,
    Parallelism,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits128);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 99);
    let mut rng = StdRng::seed_from_u64(7);

    // Client data: X is features × samples (the paper's layout).
    let x = Matrix::from_fn(8, 16, |_, _| rng.random_range(-50i64..=50));
    let feip_mpk = authority.feip_public_key(8);
    let febo_mpk = authority.febo_public_key();

    let t = Instant::now();
    let enc = EncryptedMatrix::encrypt_full(&x, &feip_mpk, &febo_mpk, &mut rng)?;
    println!("pre-process-encryption of 8x16 matrix: {:?}", t.elapsed());

    let table = DlogTable::new(&group, 2_000_000);

    // --- dot-product: Z = W · X ---------------------------------------
    let w = Matrix::from_fn(4, 8, |_, _| rng.random_range(-50i64..=50));
    let t = Instant::now();
    let keys = derive_dot_keys(&authority, &w)?;
    println!("pre-process-key-derive (4 rows): {:?}", t.elapsed());

    for par in [Parallelism::Serial, Parallelism::available()] {
        let t = Instant::now();
        let z = secure_dot(&feip_mpk, &enc, &keys, &w, &table, par)?;
        println!("secure dot-product 4x8 · 8x16 [{par:?}]: {:?}", t.elapsed());
        assert_eq!(z, w.matmul(&x), "secure result must equal plaintext matmul");
    }

    // --- element-wise ops ----------------------------------------------
    let y = Matrix::from_fn(8, 16, |_, _| rng.random_range(1i64..=20));
    for op in [BasicOp::Add, BasicOp::Sub, BasicOp::Mul] {
        let keys = derive_elementwise_keys(&authority, &enc, op, &y)?;
        let t = Instant::now();
        let z = secure_elementwise(
            &febo_mpk,
            &enc,
            &keys,
            op,
            &y,
            &table,
            Parallelism::available(),
        )?;
        println!("secure element-wise {op} on 8x16: {:?}", t.elapsed());
        assert_eq!(z, x.zip_map(&y, |a, b| op.apply(a, b)));
    }

    // Division requires exact divisibility (a property of the paper's
    // FEBO construction) — build a divisible operand to show it working.
    let q = Matrix::from_fn(8, 16, |_, _| rng.random_range(-30i64..=30));
    let xd = q.hadamard(&y);
    let enc_d = EncryptedMatrix::encrypt_elements(&xd, &febo_mpk, &mut rng)?;
    let keys = derive_elementwise_keys(&authority, &enc_d, BasicOp::Div, &y)?;
    let z = secure_elementwise(
        &febo_mpk,
        &enc_d,
        &keys,
        BasicOp::Div,
        &y,
        &table,
        Parallelism::available(),
    )?;
    assert_eq!(z, q);
    println!("secure element-wise division (exact): ok");

    println!("\nall secure results verified against plaintext computation");
    Ok(())
}
