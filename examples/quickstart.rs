//! Quickstart: the CryptoNN pipeline in one file.
//!
//! 1. An authority sets up the crypto parameters.
//! 2. A client encrypts a feature vector under FEIP and a value under
//!    FEBO.
//! 3. The server obtains function keys and computes over the
//!    ciphertexts — learning only the function outputs.
//! 4. A tiny CryptoNN model trains over an encrypted batch.
//!
//! Run with: `cargo run --release -p cryptonn-suite --example quickstart`

use cryptonn_core::{Client, CryptoMlp, CryptoNnConfig};
use cryptonn_fe::{febo, feip, BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup};
use cryptonn_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Authority setup -------------------------------------------
    let config = CryptoNnConfig::fast(); // 64-bit demo group; use `paper()` for 256-bit
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 2019);
    println!(
        "group: {}-bit safe prime p = {}",
        group.modulus().bit_len(),
        group.modulus()
    );

    // --- 2. Client-side encryption ------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let x = [3i64, -1, 4, 1, 5];
    let feip_mpk = authority.feip_public_key(x.len());
    let ct_vec = feip::encrypt(&feip_mpk, &x, &mut rng)?;

    let secret = 42i64;
    let febo_mpk = authority.febo_public_key();
    let ct_val = febo::encrypt(&febo_mpk, secret, &mut rng);
    println!("client encrypted x = {x:?} (FEIP) and {secret} (FEBO)");

    // --- 3. Server-side secure computation ----------------------------
    let table = DlogTable::new(&group, 100_000);

    // Inner product <x, w> without seeing x.
    let w = [2i64, 7, 1, 8, 2];
    let sk = authority.derive_ip_key(w.len(), &w)?;
    let ip = feip::decrypt(&feip_mpk, &ct_vec, &sk, &w, &table)?;
    println!(
        "server computed <x, w> = {ip} (expected {})",
        3 * 2 - 7 + 4 + 8 + 10
    );

    // Basic arithmetic on the encrypted value.
    for (op, y) in [
        (BasicOp::Add, 8),
        (BasicOp::Sub, 50),
        (BasicOp::Mul, -3),
        (BasicOp::Div, 6),
    ] {
        let sk = authority.derive_bo_key(ct_val.commitment(), op, y)?;
        let z = febo::decrypt(&febo_mpk, &sk, &ct_val, op, y, &table)?;
        println!("server computed {secret} {op} {y} = {z}");
    }

    // --- 4. Encrypted training ----------------------------------------
    // A 2-feature binary task: the server never sees the plaintext batch.
    let x = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.1, 0.9], &[0.2, 0.8]]);
    let y = Matrix::from_rows(&[&[1.0], &[1.0], &[0.0], &[0.0]]);
    let mut client =
        Client::for_mlp(&authority, 2, 1, config.fp, 3).with_parallelism(config.parallelism);
    let batch = client.encrypt_batch(&x, &y)?;

    let mut model_rng = StdRng::seed_from_u64(4);
    let mut model = CryptoMlp::binary(2, &[4], config, &mut model_rng);
    for epoch in 0..40 {
        let step = model.train_encrypted_batch(&authority, &batch, 2.0)?;
        if epoch % 10 == 0 {
            println!(
                "encrypted training epoch {epoch:>2}: loss = {:.4}",
                step.loss
            );
        }
    }
    let pred = model.predict_plain(&x);
    println!(
        "predictions after encrypted training: {:.2} {:.2} {:.2} {:.2} (want 1 1 0 0)",
        pred[(0, 0)],
        pred[(1, 0)],
        pred[(2, 0)],
        pred[(3, 0)]
    );

    let log = authority.comm_log();
    println!(
        "authority served {} dot-product and {} element-wise key requests ({} B in, {} B out)",
        log.ip_requests,
        log.bo_requests,
        log.bytes_received(),
        log.bytes_sent()
    );
    Ok(())
}
