//! Records the golden 2-client MLP session transcript used by the
//! `cryptonn-protocol` replay tests, and demonstrates the transcript
//! tooling: record → save → load → replay → verify.
//!
//! Run with:
//! `cargo run --release -p cryptonn-suite --example record_transcript [out.json]`
//!
//! Without an argument the transcript is written next to the replay
//! test's golden fixture path **only if run from the repository root**
//! (`crates/protocol/tests/data/golden_2client_mlp.json`).

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_protocol::{
    mlp_session_config, replay_server, MlpSpec, TrainingSessionRunner, Transcript,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Keep this in lock-step with `golden_config` in
    // crates/protocol/tests/transcript_replay.rs.
    let data = clinic_dataset(6, 71);
    let config = mlp_session_config(
        MlpSpec {
            feature_dim: data.feature_dim(),
            hidden: vec![3],
            classes: data.classes(),
            objective: Objective::SoftmaxCrossEntropy,
        },
        2,
        1,
        3,
        0.7,
    );

    let outcome = TrainingSessionRunner::new(config).run_mlp(&data)?;
    println!(
        "recorded {} messages over {} training steps (losses: {:?})",
        outcome.transcript.len(),
        outcome.summary.steps,
        outcome.summary.losses
    );

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crates/protocol/tests/data/golden_2client_mlp.json".to_string());
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    outcome.transcript.save(path)?;
    println!("wrote {}", path.display());

    // Round-trip through disk and replay the server from the file alone.
    let loaded = Transcript::load(path)?;
    let replayed = replay_server(&loaded)?;
    assert!(
        replayed.matches_recording(),
        "replay must reproduce the recorded weights bit-for-bit"
    );
    println!(
        "replay verified: {} steps, final weights identical",
        replayed.replayed.steps
    );
    Ok(())
}
