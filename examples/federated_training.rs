//! Federated encrypted training: the paper's Fig. 1 topology with K
//! data owners streaming encrypted batches to one server.
//!
//! The session layer shards the dataset across the clients, pipelines
//! client-side encryption against server-side training, and records
//! every message. The punchline is the paper's "distributed data
//! source" property made exact: the K-client run produces *the same
//! model, bit for bit*, as the single-client run — no accuracy is
//! traded for federation.
//!
//! Run with:
//! `cargo run --release -p cryptonn-suite --example federated_training`

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_matrix::Matrix;
use cryptonn_nn::binary_accuracy;
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{mlp_session_config, MlpSpec, RunnerOptions, TrainingSessionRunner};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = clinic_dataset(60, 10);
    let test = clinic_dataset(40, 11);
    let spec = MlpSpec {
        feature_dim: train.feature_dim(),
        hidden: vec![8],
        classes: train.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    };

    println!(
        "clinic task: {} train samples × {} features, sharded across clients\n",
        train.len(),
        train.feature_dim()
    );

    let mut single_summary = None;
    for k in [1u32, 2, 4] {
        let config = mlp_session_config(spec.clone(), k, 4, 12, 1.2);
        let runner = TrainingSessionRunner::new(config).with_options(RunnerOptions {
            pipelined: true,
            parallelism: Parallelism::available(),
            record: k == 2, // record one transcript for show
        });
        let start = Instant::now();
        let outcome = runner.run_mlp(&train)?;
        let elapsed = start.elapsed();

        // Score the trained model on held-out data (plaintext forward —
        // the evaluation harness owns the test set).
        let mut server = outcome.server;
        let pred = server
            .mlp_mut()
            .expect("MLP session")
            .predict_plain(test.images());
        let y_test = Matrix::from_fn(test.len(), 1, |r, _| test.labels()[r] as f64);
        let acc = binary_accuracy(&column(&pred, 1), &y_test);

        println!(
            "K={k}: {} steps, final loss {:.4}, held-out accuracy {:.2}, {} messages, {:.2?}",
            outcome.summary.steps,
            outcome.summary.losses.last().unwrap(),
            acc,
            outcome.transcript.len(),
            elapsed
        );

        match &single_summary {
            None => single_summary = Some(outcome.summary),
            Some(baseline) => {
                assert_eq!(
                    baseline, &outcome.summary,
                    "K={k} must match the single-client run bit-for-bit"
                );
                println!("      ↳ bit-identical to the K=1 model");
            }
        }
    }
    Ok(())
}

/// Extracts column `c` as an `(n, 1)` matrix.
fn column(m: &Matrix<f64>, c: usize) -> Matrix<f64> {
    Matrix::from_fn(m.rows(), 1, |r, _| m[(r, c)])
}
