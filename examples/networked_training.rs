//! Federated CryptoNN training over a real transport — the paper's
//! Fig. 1 topology as three OS-level roles on TCP loopback:
//!
//! 1. the **key authority daemon** (`cryptonn-net::AuthorityServer`),
//!    holding every master secret;
//! 2. the **multi-session training server**
//!    (`cryptonn-net::SessionServer`), which reaches the authority
//!    over its own socket and never sees a plaintext;
//! 3. `K` **data-owner clients**, each streaming its encrypted shard
//!    from its own thread and socket.
//!
//! The networked run is then checked bit-for-bit against the
//! deterministic in-process runner on the same config and dataset —
//! the transport is an implementation detail, not a numerics change.
//!
//! Run with:
//! `cargo run --release -p cryptonn-suite --example networked_training`

use std::sync::Arc;

use cryptonn_core::Objective;
use cryptonn_data::clinic_dataset;
use cryptonn_net::{
    run_client, AuthorityOptions, AuthorityServer, RemoteAuthority, ServerOptions, SessionServer,
    TcpTransport, DEFAULT_MAX_FRAME,
};
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, round_robin_shards, ClientId, ClientSession, MlpSpec, SessionId,
    TrainingSessionRunner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = clinic_dataset(45, 13);
    let spec = MlpSpec {
        feature_dim: data.feature_dim(),
        hidden: vec![6],
        classes: data.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    };
    let clients = 3u32;
    let config = mlp_session_config(spec, clients, 2, 15, 1.2);

    // --- the three roles, each on its own socket ---------------------
    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())?;
    let server = SessionServer::start(
        "127.0.0.1:0",
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        ServerOptions::default(),
    )?;
    println!(
        "authority on {}, session server on {}",
        authority.local_addr(),
        server.local_addr()
    );

    let session = SessionId(42);
    let addr = server.local_addr();
    let shards = round_robin_shards(&data, config.batch_size as usize, clients as usize);
    let workers: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(i, shard)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let sm = ClientSession::new(
                    ClientId(i as u32),
                    config.client_seed_base + i as u64,
                    Parallelism::Serial,
                    shard,
                );
                let transport = TcpTransport::connect(addr, DEFAULT_MAX_FRAME)?;
                run_client(transport, session, sm, &config)
            })
        })
        .collect();

    let mut summaries = Vec::new();
    for (i, worker) in workers.into_iter().enumerate() {
        let summary = worker.join().expect("client thread")?;
        println!(
            "client {i}: session finished after {} steps, final loss {:.4}",
            summary.steps,
            summary.losses.last().copied().unwrap_or(f64::NAN)
        );
        summaries.push(summary);
    }
    server.shutdown();
    authority.shutdown();

    // --- the cross-check: transport must not change a single bit -----
    let reference = TrainingSessionRunner::new(config).run_mlp(&data)?.summary;
    let identical = summaries.iter().all(|s| *s == reference);
    println!(
        "bit-identical to the in-process deterministic runner: {}",
        if identical { "yes" } else { "NO — BUG" }
    );
    assert!(identical, "networked training diverged from the runner");
    Ok(())
}
