//! The paper's motivating scenario: distributed federal clinics
//! jointly training a diagnostic model on a cloud server, with every
//! patient record encrypted before it leaves a clinic.
//!
//! Three clients (clinics) encrypt disjoint shards of a tabular task
//! under the same authority public keys; the server trains one
//! CryptoNN MLP across all of them and is evaluated on held-out data.
//!
//! Run with: `cargo run --release -p cryptonn-suite --example clinic_mlp`

use cryptonn_core::{Client, CryptoMlp, CryptoNnConfig};
use cryptonn_data::{clinic_dataset, split_among_clients, CLINIC_FEATURES};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::Matrix;
use cryptonn_nn::binary_accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CryptoNnConfig::fast();
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 77);

    let features = CLINIC_FEATURES.len();
    let train = clinic_dataset(90, 21);
    let test = clinic_dataset(60, 22);
    let clinics = split_among_clients(&train, 3);
    println!(
        "{} clinics, {} patients total, {} features: {:?}",
        clinics.len(),
        train.len(),
        features,
        CLINIC_FEATURES
    );

    // Each clinic is an independent client — same mpk, own RNG.
    let mut clients: Vec<Client> = (0..clinics.len() as u64)
        .map(|i| {
            Client::for_mlp(&authority, features, 1, config.fp, 100 + i)
                .with_parallelism(config.parallelism)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(23);
    let mut model = CryptoMlp::binary(features, &[8], config, &mut rng);

    // Clinic features are standardized Gaussians; squash into [-1, 1]
    // (clients agree on the normalization as part of pre-processing).
    let squash = |m: &Matrix<f64>| m.map(|v| (v / 3.0).clamp(-1.0, 1.0));

    for epoch in 0..12 {
        let mut loss_sum = 0.0;
        let mut batches = 0.0;
        for (clinic, client) in clinics.iter().zip(clients.iter_mut()) {
            for (x, y) in clinic.batches(15) {
                // One-hot with 2 classes → take the positive column.
                let y_bin = Matrix::from_fn(y.rows(), 1, |r, _| y[(r, 1)]);
                let batch = client.encrypt_batch(&squash(&x), &y_bin)?;
                let step = model.train_encrypted_batch(&authority, &batch, 1.5)?;
                loss_sum += step.loss;
                batches += 1.0;
            }
        }
        if epoch % 3 == 0 {
            println!(
                "epoch {epoch:>2}: mean encrypted-batch loss = {:.4}",
                loss_sum / batches
            );
        }
    }

    // Evaluate on held-out patients (plaintext, by the evaluator).
    let x_test = squash(test.images());
    let y_test = Matrix::from_fn(test.len(), 1, |r, _| test.labels()[r] as f64);
    let pred = model.predict_plain(&x_test);
    println!(
        "\nheld-out diagnostic accuracy after encrypted training: {:.1}%",
        100.0 * binary_accuracy(&pred, &y_test)
    );
    Ok(())
}
