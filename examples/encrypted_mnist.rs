//! CryptoCNN on (synthetic) MNIST — the paper's headline experiment at
//! demo scale.
//!
//! Trains the scaled-down CryptoCNN (LeNet topology over 14×14 digits)
//! on encrypted images and labels, against a plaintext twin with the
//! same initialization, and reports batch accuracy for both — a mini
//! version of Fig. 6. The full-scale harness is
//! `cargo run --release -p cryptonn-bench --bin fig6_table3`.
//!
//! Run with: `cargo run --release -p cryptonn-suite --example encrypted_mnist`

use cryptonn_core::{Client, CryptoCnn, CryptoNnConfig};
use cryptonn_data::{synthetic_digits, DigitConfig};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::Tensor4;
use cryptonn_nn::accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CryptoNnConfig::fast();
    let group = SchnorrGroup::precomputed(config.level);
    let authority = KeyAuthority::with_seed(group, PermittedFunctions::all(), 606);

    // Demo scale: 2 digit classes, 14×14 images, a few dozen samples.
    let classes = 2;
    let train = synthetic_digits(96, DigitConfig::small(), 11);
    // Keep only labels < classes (synthetic_digits cycles 0..10).
    let keep: Vec<usize> = (0..train.len())
        .filter(|&i| train.labels()[i] < classes)
        .collect();
    println!(
        "training CryptoCNN vs plaintext LeNet on {} encrypted digits",
        keep.len()
    );

    let mut rng = StdRng::seed_from_u64(12);
    let mut crypto = CryptoCnn::lenet_small(config, classes, &mut rng);
    let mut rng_twin = StdRng::seed_from_u64(12);
    let mut plain = CryptoCnn::lenet_small(config, classes, &mut rng_twin);

    let spec = crypto.conv_spec();
    let mut client = Client::for_cnn(&authority, &spec, 1, classes, config.fp, 13)
        .with_parallelism(config.parallelism);

    let batch_size = 8;
    for epoch in 0..8 {
        let mut enc_correct = 0.0;
        let mut plain_correct = 0.0;
        let mut enc_loss = 0.0;
        let mut plain_loss = 0.0;
        let mut batches = 0.0;
        for chunk in keep.chunks(batch_size) {
            // Assemble the batch tensor and one-hot labels.
            let n = chunk.len();
            let mut data = Vec::with_capacity(n * 196);
            let mut labels = Vec::with_capacity(n);
            for &i in chunk {
                data.extend_from_slice(train.images().row(i));
                labels.push(train.labels()[i]);
            }
            let images = Tensor4::from_vec(n, 1, 14, 14, data);
            let y = cryptonn_nn::one_hot(&labels, classes);

            // Encrypted arm: client encrypts, server trains blind.
            let enc_batch = client.encrypt_image_batch(&images, &y, &spec)?;
            let step = crypto.train_encrypted_batch(&authority, &enc_batch, 0.3)?;
            enc_correct += accuracy(&step.predictions, &y);
            enc_loss += step.loss;

            // Plaintext twin.
            let step_p = plain.train_plain_batch(&images.flatten(), &y, 0.3);
            plain_correct += accuracy(&step_p.predictions, &y);
            plain_loss += step_p.loss;
            batches += 1.0;
        }
        println!(
            "epoch {epoch}: loss — CryptoCNN {:.4}, LeNet {:.4} | avg batch accuracy — CryptoCNN {:.3}, LeNet {:.3}",
            enc_loss / batches,
            plain_loss / batches,
            enc_correct / batches,
            plain_correct / batches
        );
    }

    let log = authority.comm_log();
    println!(
        "\nauthority key traffic: {} FEIP requests, {} FEBO requests, {:.1} KiB in, {:.1} KiB out",
        log.ip_requests,
        log.bo_requests,
        log.bytes_received() as f64 / 1024.0,
        log.bytes_sent() as f64 / 1024.0
    );
    Ok(())
}
