//! Train once, serve forever: the full CryptoNN lifecycle over real
//! sockets — federated encrypted *training*, then encrypted inference
//! *serving* against the frozen model.
//!
//! 1. A training session runs in-process (the deterministic runner)
//!    and yields the trained model.
//! 2. The model is frozen behind an `InferenceServer`, with the
//!    networked key authority as a separate daemon; the server wraps
//!    its authority channel in a functional-key cache, so after the
//!    first sweep serving is **authority-free**.
//! 3. Concurrent predict clients stream encrypted feature batches over
//!    TCP loopback; the server coalesces in-flight requests into
//!    shared secure sweeps and returns each client its predictions.
//! 4. The served outputs are asserted **bit-identical** to in-process
//!    `CryptoMlp::predict_encrypted` on the same ciphertexts.
//!
//! Run with:
//! `cargo run --release -p cryptonn-suite --example encrypted_inference`

use std::sync::Arc;

use cryptonn_core::{Client, Objective};
use cryptonn_data::clinic_dataset;
use cryptonn_matrix::Matrix;
use cryptonn_net::{
    run_inference_client, AuthorityOptions, AuthorityServer, InferenceServer,
    InferenceServerOptions, RemoteAuthority,
};
use cryptonn_protocol::{
    mlp_session_config, AuthoritySession, ClientId, InferenceOptions, MlpSpec, SessionId,
    TrainingSessionRunner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- phase 1: train ----------------------------------------------
    let data = clinic_dataset(30, 19);
    let spec = MlpSpec {
        feature_dim: data.feature_dim(),
        hidden: vec![5],
        classes: data.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    };
    let config = mlp_session_config(spec, 1, 2, 10, 1.0);
    let outcome = TrainingSessionRunner::new(config.clone()).run_mlp(&data)?;
    println!(
        "trained: {} steps, final loss {:.4}",
        outcome.summary.steps,
        outcome.summary.losses.last().copied().unwrap_or(f64::NAN)
    );
    let model = outcome.server.into_mlp().expect("MLP session");
    // The in-process reference twin (training is deterministic).
    let mut reference = TrainingSessionRunner::new(config.clone())
        .run_mlp(&data)?
        .server
        .into_mlp()
        .expect("MLP session");

    // --- phase 2: freeze and serve -----------------------------------
    let authority = AuthorityServer::start("127.0.0.1:0", AuthorityOptions::default())?;
    let session_id = SessionId(1);
    let server = InferenceServer::start(
        "127.0.0.1:0",
        session_id,
        &config,
        model,
        Arc::new(RemoteAuthority::new(authority.local_addr())),
        InferenceServerOptions {
            session: InferenceOptions {
                max_batch: 4,
                key_cache: 256,
            },
            ..InferenceServerOptions::default()
        },
    )?;
    let addr = server.local_addr();
    println!(
        "serving on {addr} (authority on {})",
        authority.local_addr()
    );

    // --- phase 3: concurrent predict clients -------------------------
    let per_client = 5usize;
    let dim = data.feature_dim();
    let inputs = |c: usize| -> Vec<Matrix<f64>> {
        (0..per_client)
            .map(|i| Matrix::from_fn(2, dim, |r, k| ((c + i * 5 + r * 3 + k) % 13) as f64 / 13.0))
            .collect()
    };
    let handles: Vec<_> = (0..3usize)
        .map(|c| {
            let config = config.clone();
            let inputs = inputs(c);
            std::thread::spawn(move || {
                run_inference_client(
                    addr,
                    session_id,
                    ClientId(c as u32),
                    &config,
                    500 + c as u64,
                    &inputs,
                    2, // two requests in flight: lets the server coalesce
                )
                .expect("serving completes")
            })
        })
        .collect();
    let served: Vec<Vec<Matrix<f64>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let stats = server.cache_stats();
    println!(
        "served {} requests in {} sweeps; key cache: {} hits / {} misses ({:.0}% hit rate)",
        server.served(),
        server.sweeps(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    server.shutdown();
    authority.shutdown();

    // --- phase 4: the served outputs are the in-process outputs ------
    let ref_authority = AuthoritySession::new(&config);
    let params = ref_authority.public_params_for(&config);
    for (c, outputs) in served.iter().enumerate() {
        let mut encryptor = Client::from_keys(
            params.x_mpk.clone(),
            params.y_mpk.clone(),
            params.febo_mpk.clone(),
            params.fp,
            500 + c as u64,
        );
        for (x, served_out) in inputs(c).iter().zip(outputs) {
            let batch = encryptor.encrypt_features(x)?;
            let direct = reference.predict_encrypted(ref_authority.authority(), &batch)?;
            assert_eq!(served_out, &direct, "served != in-process (client {c})");
        }
    }
    println!("bit-identity: served predictions == in-process CryptoMlp::predict ✓");
    Ok(())
}
