//! End-to-end encrypted training: the full CryptoNN pipeline from
//! client-side encryption to a trained server-side model.

use cryptonn_core::{Client, CryptoCnn, CryptoMlp, CryptoNnConfig};
use cryptonn_data::{clinic_dataset, split_among_clients, synthetic_digits, DigitConfig};
use cryptonn_fe::{KeyAuthority, PermittedFunctions};
use cryptonn_group::SchnorrGroup;
use cryptonn_matrix::{Matrix, Tensor4};
use cryptonn_nn::{accuracy, binary_accuracy, one_hot};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn authority(config: &CryptoNnConfig, seed: u64) -> KeyAuthority {
    let group = SchnorrGroup::precomputed(config.level);
    KeyAuthority::with_seed(group, PermittedFunctions::all(), seed)
}

/// Encrypted MLP training on the clinic task must reach high held-out
/// accuracy — the paper's central claim at integration-test scale.
#[test]
fn encrypted_mlp_learns_the_clinic_task() {
    let config = CryptoNnConfig::fast();
    let auth = authority(&config, 1);
    let train = clinic_dataset(60, 10);
    let test = clinic_dataset(40, 11);

    let features = train.feature_dim();
    let mut client = Client::for_mlp(&auth, features, 1, config.fp, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = CryptoMlp::binary(features, &[8], config, &mut rng);

    let squash = |m: &Matrix<f64>| m.map(|v: f64| (v / 3.0).clamp(-1.0, 1.0));
    for _ in 0..10 {
        for (x, y) in train.batches(12) {
            let y_bin = Matrix::from_fn(y.rows(), 1, |r, _| y[(r, 1)]);
            let batch = client.encrypt_batch(&squash(&x), &y_bin).unwrap();
            model.train_encrypted_batch(&auth, &batch, 1.5).unwrap();
        }
    }

    let pred = model.predict_plain(&squash(test.images()));
    let y_test = Matrix::from_fn(test.len(), 1, |r, _| test.labels()[r] as f64);
    let acc = binary_accuracy(&pred, &y_test);
    assert!(
        acc > 0.8,
        "encrypted training should learn the task, got {acc}"
    );
}

/// Encrypted and plaintext training must track each other batch by
/// batch (the Fig. 6 claim): same init, same data, same schedule.
#[test]
fn encrypted_and_plaintext_mlp_track_each_other() {
    let config = CryptoNnConfig::fast();
    let auth = authority(&config, 4);
    let train = clinic_dataset(40, 12);
    let features = train.feature_dim();

    let mut rng_a = StdRng::seed_from_u64(5);
    let mut crypto = CryptoMlp::binary(features, &[6], config, &mut rng_a);
    let mut rng_b = StdRng::seed_from_u64(5);
    let mut plain = CryptoMlp::binary(features, &[6], config, &mut rng_b);

    let mut client = Client::for_mlp(&auth, features, 1, config.fp, 6);
    let squash = |m: &Matrix<f64>| m.map(|v: f64| (v / 3.0).clamp(-1.0, 1.0));

    for epoch in 0..4 {
        for (x, y) in train.batches(10) {
            let y_bin = Matrix::from_fn(y.rows(), 1, |r, _| y[(r, 1)]);
            let x = squash(&x);
            let batch = client.encrypt_batch(&x, &y_bin).unwrap();
            let enc_step = crypto.train_encrypted_batch(&auth, &batch, 1.0).unwrap();
            let plain_step = plain.train_plain_batch(&x, &y_bin, 1.0);
            assert!(
                (enc_step.loss - plain_step.loss).abs() < 0.05,
                "epoch {epoch}: losses diverged: {} vs {}",
                enc_step.loss,
                plain_step.loss
            );
        }
    }
    // Weight trajectories stay within quantization drift.
    assert!(crypto
        .first_layer()
        .weights()
        .approx_eq(plain.first_layer().weights(), 0.1));
}

/// Federated setting: three clients, one model, one mpk.
#[test]
fn multiple_clients_train_one_encrypted_model() {
    let config = CryptoNnConfig::fast();
    let auth = authority(&config, 7);
    let train = clinic_dataset(45, 13);
    let shards = split_among_clients(&train, 3);
    let features = train.feature_dim();

    let mut clients: Vec<Client> = (0..3u64)
        .map(|i| Client::for_mlp(&auth, features, 1, config.fp, 20 + i))
        .collect();
    let mut rng = StdRng::seed_from_u64(8);
    let mut model = CryptoMlp::binary(features, &[6], config, &mut rng);

    let squash = |m: &Matrix<f64>| m.map(|v: f64| (v / 3.0).clamp(-1.0, 1.0));
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..6 {
        for (shard, client) in shards.iter().zip(clients.iter_mut()) {
            for (x, y) in shard.batches(15) {
                let y_bin = Matrix::from_fn(y.rows(), 1, |r, _| y[(r, 1)]);
                let batch = client.encrypt_batch(&squash(&x), &y_bin).unwrap();
                last_loss = model
                    .train_encrypted_batch(&auth, &batch, 1.5)
                    .unwrap()
                    .loss;
                first_loss.get_or_insert(last_loss);
            }
        }
    }
    assert!(
        last_loss < first_loss.unwrap(),
        "federated encrypted training should reduce loss: {first_loss:?} -> {last_loss}"
    );
}

/// CryptoCNN on synthetic digits: the encrypted CNN must track its
/// plaintext twin and make meaningful progress.
#[test]
fn encrypted_cnn_tracks_plaintext_twin_on_digits() {
    let config = CryptoNnConfig::fast();
    let auth = authority(&config, 9);
    let classes = 3;
    let data = synthetic_digits(60, DigitConfig::small(), 14);
    let keep: Vec<usize> = (0..data.len())
        .filter(|&i| data.labels()[i] < classes)
        .collect();

    let mut rng_a = StdRng::seed_from_u64(10);
    let mut crypto = CryptoCnn::lenet_small(config, classes, &mut rng_a);
    let mut rng_b = StdRng::seed_from_u64(10);
    let mut plain = CryptoCnn::lenet_small(config, classes, &mut rng_b);

    let spec = crypto.conv_spec();
    let mut client = Client::for_cnn(&auth, &spec, 1, classes, config.fp, 11);

    let mut enc_accs = Vec::new();
    let mut plain_accs = Vec::new();
    for chunk in keep.chunks(6).take(4) {
        let n = chunk.len();
        let mut flat = Vec::with_capacity(n * 196);
        let mut labels = Vec::with_capacity(n);
        for &i in chunk {
            flat.extend_from_slice(data.images().row(i));
            labels.push(data.labels()[i]);
        }
        let images = Tensor4::from_vec(n, 1, 14, 14, flat);
        let y = one_hot(&labels, classes);

        let batch = client.encrypt_image_batch(&images, &y, &spec).unwrap();
        let enc_step = crypto.train_encrypted_batch(&auth, &batch, 0.5).unwrap();
        let plain_step = plain.train_plain_batch(&images.flatten(), &y, 0.5);

        enc_accs.push(accuracy(&enc_step.predictions, &y));
        plain_accs.push(accuracy(&plain_step.predictions, &y));
        assert!(
            (enc_step.loss - plain_step.loss).abs() < 0.1,
            "CNN losses diverged: {} vs {}",
            enc_step.loss,
            plain_step.loss
        );
    }
    // Same-batch accuracies agree closely (predictions near-identical).
    for (e, p) in enc_accs.iter().zip(&plain_accs) {
        assert!(
            (e - p).abs() <= 0.34,
            "batch accuracies diverged: {e} vs {p}"
        );
    }
}

/// The authority's communication log reflects §IV-B2's model: per
/// iteration the server sends k·n weights and receives k keys.
#[test]
fn key_traffic_matches_the_papers_accounting() {
    let config = CryptoNnConfig::fast();
    let auth = authority(&config, 15);
    let features = 8;
    let hidden = 5;
    let mut client = Client::for_mlp(&auth, features, 1, config.fp, 16);
    let mut rng = StdRng::seed_from_u64(17);
    let mut model = CryptoMlp::binary(features, &[hidden], config, &mut rng);

    let x = Matrix::from_fn(4, features, |_, c| (c as f64) / 10.0);
    let y = Matrix::from_fn(4, 1, |r, _| (r % 2) as f64);
    let batch = client.encrypt_batch(&x, &y).unwrap();

    auth.reset_comm_log();
    model.train_encrypted_batch(&auth, &batch, 0.5).unwrap();
    let log = auth.comm_log();

    // Secure feed-forward: k keys of n weights each (k=hidden, n=features).
    // Secure gradient: n unit keys of n weights each (first iteration only)
    // + secure loss: 0 for MSE. Plus FEBO sub: classes × batch requests.
    assert!(log.ip_requests >= (hidden + features) as u64);
    assert_eq!(log.bo_requests, 4, "one FEBO Sub request per output cell");
    assert!(log.ip_weights_received >= (hidden * features + features * features) as u64);

    // Second iteration: unit keys are cached, so exactly k more IP
    // requests and 4 more FEBO requests.
    let before = auth.comm_log();
    model.train_encrypted_batch(&auth, &batch, 0.5).unwrap();
    let after = auth.comm_log();
    assert_eq!(after.ip_requests - before.ip_requests, hidden as u64);
    assert_eq!(after.bo_requests - before.bo_requests, 4);
}
