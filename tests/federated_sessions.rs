//! Whole-stack integration tests for the multi-client session layer:
//! federated training must actually learn, the CNN loop must run over
//! the wire protocol, and a transcript must survive the disk roundtrip
//! and replay — all across crate boundaries, exactly as an application
//! would wire them.

use std::sync::Arc;

use cryptonn_core::Objective;
use cryptonn_data::{clinic_dataset, synthetic_digits, DigitConfig};
use cryptonn_nn::one_hot;
use cryptonn_parallel::Parallelism;
use cryptonn_protocol::{
    mlp_session_config, replay_server, AuthorityChannel, AuthoritySession, ClientId, CnnArch,
    EncryptedImageBatchMsg, KeyRequest, KeyResponse, MlpSpec, ModelSpec, ProtocolError,
    RunnerOptions, ServerSession, SessionConfig, TrainingSessionRunner, Transcript,
};

/// A test channel that forwards to an in-process authority session
/// without recording — the minimal live wiring.
struct DirectChannel(Arc<AuthoritySession>);

impl AuthorityChannel for DirectChannel {
    fn exchange(&mut self, req: KeyRequest) -> Result<KeyResponse, ProtocolError> {
        Ok(self.0.handle(&req))
    }
}

/// Federated encrypted MLP training through the session layer must
/// learn the clinic task — the session-layer twin of the end-to-end
/// `multiple_clients_train_one_encrypted_model` test, now with real
/// sharding, scheduling and pipelining.
#[test]
fn federated_session_learns_the_clinic_task() {
    let train = clinic_dataset(45, 13);
    let spec = MlpSpec {
        feature_dim: train.feature_dim(),
        hidden: vec![6],
        classes: train.classes(),
        objective: Objective::SoftmaxCrossEntropy,
    };
    let config = mlp_session_config(spec, 3, 4, 15, 1.2);
    let outcome = TrainingSessionRunner::new(config)
        .with_options(RunnerOptions {
            pipelined: true,
            parallelism: Parallelism::Threads(2),
            record: false,
        })
        .run_mlp(&train)
        .expect("session must run");

    let losses = &outcome.summary.losses;
    assert_eq!(losses.len() as u64, outcome.summary.steps);
    assert!(
        losses.last().unwrap() < &losses[0],
        "federated session should reduce loss: {losses:?}"
    );
}

/// The CNN training loop runs on top of the session layer: encrypted
/// window batches travel as wire messages and the server trains through
/// its authority channel only.
#[test]
fn cnn_training_runs_over_the_session_layer() {
    let classes = 3;
    let config = SessionConfig {
        model: ModelSpec::Cnn(CnnArch::LenetSmall(classes)),
        ..mlp_session_config(
            MlpSpec {
                feature_dim: 196,
                hidden: vec![1],
                classes,
                objective: Objective::SoftmaxCrossEntropy,
            },
            2,
            1,
            6,
            0.5,
        )
    };
    let authority = Arc::new(AuthoritySession::new(&config));

    // The server publishes its conv geometry; window_dim fixes x_mpk.
    let data = synthetic_digits(40, DigitConfig::small(), 14);
    let keep: Vec<usize> = (0..data.len())
        .filter(|&i| data.labels()[i] < classes)
        .collect();
    let spec = cryptonn_matrix::ConvSpec::square(3, 1, 1);
    let window_dim = 3 * 3;
    let params = authority.public_params(window_dim, classes, &config);

    let mut server = ServerSession::new(
        &config,
        &params,
        Box::new(DirectChannel(Arc::clone(&authority))),
        Parallelism::Threads(2),
    );

    // Two clients alternate encrypted image batches.
    let mut clients: Vec<cryptonn_core::Client> = (0..2u64)
        .map(|i| {
            cryptonn_core::Client::from_keys(
                params.x_mpk.clone(),
                params.y_mpk.clone(),
                params.febo_mpk.clone(),
                params.fp,
                90 + i,
            )
        })
        .collect();

    let mut losses = Vec::new();
    for (step, chunk) in keep.chunks(5).take(2).enumerate() {
        let rows: Vec<&[f64]> = chunk.iter().map(|&i| data.images().row(i)).collect();
        let labels: Vec<usize> = chunk.iter().map(|&i| data.labels()[i]).collect();
        let images = cryptonn_protocol::rows_to_images(
            &cryptonn_matrix::Matrix::from_rows(&rows),
            1,
            14,
            14,
        );
        let y = one_hot(&labels, classes);
        let owner = step % 2;
        let batch = clients[owner]
            .encrypt_image_batch(&images, &y, &spec)
            .expect("encrypt");
        let delta = server
            .handle_image_batch(&EncryptedImageBatchMsg {
                client: ClientId(owner as u32),
                step: step as u64,
                gen: 0,
                batch,
            })
            .expect("train");
        losses.push(delta.loss);
    }
    assert_eq!(server.steps(), 2);
    assert!(losses.iter().all(|l| l.is_finite()));

    // And the authority really was exercised over the channel.
    let log = authority.authority().comm_log();
    assert!(log.ip_requests > 0 && log.bo_requests > 0);
}

/// Record → save to disk → load → replay, through the suite's public
/// surface only.
#[test]
fn transcript_survives_disk_roundtrip_and_replays() {
    let train = clinic_dataset(12, 17);
    let spec = MlpSpec {
        feature_dim: train.feature_dim(),
        hidden: vec![4],
        classes: train.classes(),
        objective: Objective::SigmoidMse,
    };
    let config = mlp_session_config(spec, 2, 1, 6, 0.8);
    let outcome = TrainingSessionRunner::new(config)
        .run_mlp(&train)
        .expect("session must run");

    // Per-process path so concurrent test runs cannot race on the file.
    let dir = std::env::temp_dir().join(format!(
        "cryptonn-federated-sessions-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.json");
    outcome.transcript.save(&path).expect("save");
    let loaded = Transcript::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let replayed = replay_server(&loaded).expect("replay");
    assert!(replayed.matches_recording());
    assert_eq!(replayed.replayed, outcome.summary);
}
