//! Integration tests across the crypto stack:
//! bigint → group → FE → authority.

use cryptonn_fe::{febo, feip, BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn fe_works_at_every_precomputed_security_level() {
    // The same FE code must run unchanged at every embedded group size
    // (the paper's evaluation uses 256-bit; benches default lower).
    for level in [
        SecurityLevel::Bits32,
        SecurityLevel::Bits64,
        SecurityLevel::Bits128,
        SecurityLevel::Bits192,
        SecurityLevel::Bits224,
        SecurityLevel::Bits256,
    ] {
        let group = SchnorrGroup::precomputed(level);
        let mut rng = StdRng::seed_from_u64(1);
        let table = DlogTable::new(&group, 10_000);

        let (mpk, msk) = feip::setup(group.clone(), 3, &mut rng);
        let ct = feip::encrypt(&mpk, &[7, -8, 9], &mut rng).unwrap();
        let sk = feip::key_derive(&group, &msk, &[1, 2, 3]).unwrap();
        assert_eq!(
            feip::decrypt(&mpk, &ct, &sk, &[1, 2, 3], &table).unwrap(),
            7 - 16 + 27,
            "FEIP at {level:?}"
        );

        let (bmpk, bmsk) = febo::setup(group.clone(), &mut rng);
        let ct = febo::encrypt(&bmpk, -55, &mut rng);
        let sk = febo::key_derive(&group, &bmsk, ct.commitment(), BasicOp::Mul, -3).unwrap();
        assert_eq!(
            febo::decrypt(&bmpk, &sk, &ct, BasicOp::Mul, -3, &table).unwrap(),
            165,
            "FEBO at {level:?}"
        );
    }
}

#[test]
fn fe_works_over_a_freshly_generated_group() {
    // GroupGen(1^λ) end-to-end: generate a small safe-prime group and
    // run both schemes over it.
    let mut rng = StdRng::seed_from_u64(2);
    let group = SchnorrGroup::generate(40, &mut rng);
    let table = DlogTable::new(&group, 1_000);

    let (mpk, msk) = feip::setup(group.clone(), 2, &mut rng);
    let ct = feip::encrypt(&mpk, &[11, 13], &mut rng).unwrap();
    let sk = feip::key_derive(&group, &msk, &[2, 5]).unwrap();
    assert_eq!(feip::decrypt(&mpk, &ct, &sk, &[2, 5], &table).unwrap(), 87);
}

#[test]
fn multiple_clients_share_one_public_key() {
    // The paper's "distributed data source" property: ciphertexts from
    // different clients under the same mpk decrypt with the same keys.
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), 3);
    let mpk = authority.feip_public_key(2);
    let table = DlogTable::new(&group, 1_000);

    let mut client_a = StdRng::seed_from_u64(100);
    let mut client_b = StdRng::seed_from_u64(200);
    let ct_a = feip::encrypt(&mpk, &[1, 2], &mut client_a).unwrap();
    let ct_b = feip::encrypt(&mpk, &[30, 40], &mut client_b).unwrap();

    let w = [5i64, 6];
    let sk = authority.derive_ip_key(2, &w).unwrap();
    assert_eq!(feip::decrypt(&mpk, &ct_a, &sk, &w, &table).unwrap(), 17);
    assert_eq!(feip::decrypt(&mpk, &ct_b, &sk, &w, &table).unwrap(), 390);
}

#[test]
fn serde_roundtrips_ciphertexts_and_keys() {
    // Ciphertexts, public keys and function keys travel between roles;
    // they must serialize losslessly.
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let mut rng = StdRng::seed_from_u64(4);
    let (mpk, msk) = feip::setup(group.clone(), 3, &mut rng);
    let ct = feip::encrypt(&mpk, &[1, 2, 3], &mut rng).unwrap();
    let sk = feip::key_derive(&group, &msk, &[4, 5, 6]).unwrap();

    let mpk2: cryptonn_fe::FeipPublicKey =
        serde_json::from_str(&serde_json::to_string(&mpk).unwrap()).unwrap();
    let ct2: cryptonn_fe::FeipCiphertext =
        serde_json::from_str(&serde_json::to_string(&ct).unwrap()).unwrap();
    let sk2: cryptonn_fe::FeipFunctionKey =
        serde_json::from_str(&serde_json::to_string(&sk).unwrap()).unwrap();

    let table = DlogTable::new(&group, 1_000);
    assert_eq!(
        feip::decrypt(&mpk2, &ct2, &sk2, &[4, 5, 6], &table).unwrap(),
        32
    );
}

#[test]
fn dlog_bounds_are_respected_through_the_stack() {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let mut rng = StdRng::seed_from_u64(5);
    let (mpk, msk) = feip::setup(group.clone(), 2, &mut rng);
    let small_table = DlogTable::new(&group, 10);
    let ct = feip::encrypt(&mpk, &[100, 100], &mut rng).unwrap();
    let sk = feip::key_derive(&group, &msk, &[3, 4]).unwrap();
    // 700 exceeds the bound of 10 → typed error, not a wrong answer.
    assert!(matches!(
        feip::decrypt(&mpk, &ct, &sk, &[3, 4], &small_table),
        Err(cryptonn_fe::FeError::Group(
            cryptonn_group::GroupError::DlogOutOfRange { bound: 10 }
        ))
    ));
}

#[test]
fn fuzz_feip_many_random_instances() {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let table = DlogTable::new(&group, 3_000_000);
    let mut rng = StdRng::seed_from_u64(6);
    for round in 0..16 {
        let dim = rng.random_range(1..=12);
        let (mpk, msk) = feip::setup(group.clone(), dim, &mut rng);
        let x: Vec<i64> = (0..dim).map(|_| rng.random_range(-500..=500)).collect();
        let y: Vec<i64> = (0..dim).map(|_| rng.random_range(-500..=500)).collect();
        let ct = feip::encrypt(&mpk, &x, &mut rng).unwrap();
        let sk = feip::key_derive(&group, &msk, &y).unwrap();
        let expect: i64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(
            feip::decrypt(&mpk, &ct, &sk, &y, &table).unwrap(),
            expect,
            "round {round}, dim {dim}"
        );
    }
}
