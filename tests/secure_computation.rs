//! Integration tests for the secure computation layer (Algorithms 1 & 3):
//! encrypted results must equal plaintext reference computations across
//! shapes, operations and parallelism policies.

use cryptonn_fe::{BasicOp, KeyAuthority, PermittedFunctions};
use cryptonn_group::{DlogTable, SchnorrGroup, SecurityLevel};
use cryptonn_matrix::{conv2d_naive, ConvSpec, Matrix, Tensor4};
use cryptonn_smc::{
    derive_dot_keys, derive_elementwise_keys, derive_filter_keys, encrypt_windows, secure_compute,
    secure_convolution, secure_dot, secure_elementwise, EncryptedMatrix, FixedPoint, Parallelism,
    SecureFunction,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn fixture(seed: u64) -> (KeyAuthority, DlogTable, StdRng) {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let authority = KeyAuthority::with_seed(group.clone(), PermittedFunctions::all(), seed);
    let table = DlogTable::new(&group, 4_000_000);
    (authority, table, StdRng::seed_from_u64(seed ^ 0xabcd))
}

#[test]
fn dot_products_match_matmul_across_shapes() {
    let (authority, table, mut rng) = fixture(1);
    for (k, n, m) in [(1, 1, 1), (1, 8, 4), (5, 3, 7), (4, 16, 2), (3, 10, 10)] {
        let x = Matrix::from_fn(n, m, |_, _| rng.random_range(-40i64..=40));
        let w = Matrix::from_fn(k, n, |_, _| rng.random_range(-40i64..=40));
        let mpk = authority.feip_public_key(n);
        let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
        let keys = derive_dot_keys(&authority, &w).unwrap();
        let z = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Threads(3)).unwrap();
        assert_eq!(z, w.matmul(&x), "shape k={k} n={n} m={m}");
    }
}

#[test]
fn elementwise_matches_reference_for_every_op_and_parallelism() {
    let (authority, table, mut rng) = fixture(2);
    let febo_mpk = authority.febo_public_key();
    let y = Matrix::from_fn(4, 5, |i, j| {
        let v = ((i * 5 + j) % 6 + 1) as i64;
        if (i + j) % 2 == 0 {
            v
        } else {
            -v
        }
    });
    let q = Matrix::from_fn(4, 5, |_, _| rng.random_range(-25i64..=25));
    let x = q.hadamard(&y); // divisible by construction

    let enc = EncryptedMatrix::encrypt_elements(&x, &febo_mpk, &mut rng).unwrap();
    for op in BasicOp::ALL {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            let keys = derive_elementwise_keys(&authority, &enc, op, &y).unwrap();
            let z = secure_elementwise(&febo_mpk, &enc, &keys, op, &y, &table, par).unwrap();
            assert_eq!(
                z,
                x.zip_map(&y, |a, b| op.apply(a, b)),
                "op {op} par {par:?}"
            );
        }
    }
}

#[test]
fn facade_rejects_unpermitted_functions() {
    let group = SchnorrGroup::precomputed(SecurityLevel::Bits64);
    let authority =
        KeyAuthority::with_seed(group.clone(), PermittedFunctions::cryptonn_training(), 3);
    let table = DlogTable::new(&group, 1_000);
    let mut rng = StdRng::seed_from_u64(4);
    let x = Matrix::from_fn(2, 2, |_, _| 1i64);
    let feip_mpk = authority.feip_public_key(2);
    let febo_mpk = authority.febo_public_key();
    let enc = EncryptedMatrix::encrypt_full(&x, &feip_mpk, &febo_mpk, &mut rng).unwrap();

    // Mul is outside the training permitted set.
    let err = secure_compute(
        &authority,
        &feip_mpk,
        &febo_mpk,
        &enc,
        SecureFunction::Elementwise(BasicOp::Mul),
        &x,
        &table,
        Parallelism::Serial,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        cryptonn_smc::SmcError::Fe(cryptonn_fe::FeError::FunctionNotPermitted("*"))
    ));

    // Dot-product is inside.
    let ok = secure_compute(
        &authority,
        &feip_mpk,
        &febo_mpk,
        &enc,
        SecureFunction::DotProduct,
        &x,
        &table,
        Parallelism::Serial,
    );
    assert!(ok.is_ok());
}

#[test]
fn secure_convolution_matches_reference_over_fig2_geometry() {
    // The paper's Fig. 2: 5×5 image, padding 1, 3×3 filter, stride 2.
    let (authority, table, mut rng) = fixture(5);
    let fp = FixedPoint::ONE_DECIMAL;
    let spec = ConvSpec::square(3, 2, 1);
    let images = Tensor4::from_vec(
        3,
        1,
        5,
        5,
        (0..75).map(|_| rng.random_range(0.0..1.0)).collect(),
    );
    let filters_f = Matrix::from_fn(4, 9, |r, c| ((r + c * 3) % 11) as f64 / 10.0 - 0.5);
    let filters_q = fp.encode_matrix(&filters_f);

    let mpk = authority.feip_public_key(9);
    let enc = encrypt_windows(&images, &spec, fp, &mpk, &mut rng).unwrap();
    let keys = derive_filter_keys(&authority, &filters_q).unwrap();
    let out = secure_convolution(
        &mpk,
        &enc,
        &keys,
        &filters_q,
        &table,
        Parallelism::Threads(4),
    )
    .unwrap();

    let images_q = images.map(|v| fp.encode(v) as f64);
    let reference = conv2d_naive(&images_q, &filters_q.map(|v| v as f64), &[0.0; 4], &spec);
    assert!(Tensor4::from_flat(&out.map(|v| v as f64), 4, 3, 3).approx_eq(&reference, 1e-9));
}

#[test]
fn quantized_secure_dot_approximates_float_matmul() {
    // End-to-end fixed-point: float data → quantize → encrypt → secure
    // dot → decode ≈ float matmul within quantization error.
    let (authority, table, mut rng) = fixture(6);
    let fp = FixedPoint::TWO_DECIMALS;
    let xf = Matrix::from_fn(6, 4, |_, _| rng.random_range(-1.0..1.0));
    let wf = Matrix::from_fn(3, 6, |_, _| rng.random_range(-1.0..1.0));

    let xq = fp.encode_matrix(&xf);
    let wq = fp.encode_matrix(&wf);
    let mpk = authority.feip_public_key(6);
    let enc = EncryptedMatrix::encrypt_columns(&xq, &mpk, &mut rng).unwrap();
    let keys = derive_dot_keys(&authority, &wq).unwrap();
    let zq = secure_dot(&mpk, &enc, &keys, &wq, &table, Parallelism::Serial).unwrap();
    let z = fp.decode_product_matrix(&zq);

    let exact = wf.matmul(&xf);
    // Error per entry ≤ 6 terms × (2 × 0.005 + 0.005²) ≈ 0.07.
    assert!(z.approx_eq(&exact, 0.08), "distance {}", z.distance(&exact));
}

#[test]
fn parallel_and_serial_agree_bit_for_bit() {
    let (authority, table, mut rng) = fixture(7);
    let x = Matrix::from_fn(8, 8, |_, _| rng.random_range(-30i64..=30));
    let w = Matrix::from_fn(8, 8, |_, _| rng.random_range(-30i64..=30));
    let mpk = authority.feip_public_key(8);
    let enc = EncryptedMatrix::encrypt_columns(&x, &mpk, &mut rng).unwrap();
    let keys = derive_dot_keys(&authority, &w).unwrap();
    let serial = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::Serial).unwrap();
    let parallel = secure_dot(&mpk, &enc, &keys, &w, &table, Parallelism::available()).unwrap();
    assert_eq!(serial, parallel);
}
